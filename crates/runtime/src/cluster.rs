//! In-process cluster assembly.
//!
//! [`Cluster::start`] brings up the paper's Figure-2 topology on threads:
//! one central site, *n* mirror sites, a shared data channel
//! (central → mirrors), a control downlink (CHKPT/COMMIT broadcasts) and a
//! control uplink (CHKPT_REP replies). All sites share one
//! [`RuntimeClock`] so update delays are comparable.

use std::time::{Duration, Instant};

use mirror_core::api::{MirrorConfig, MirrorHandle};
use mirror_core::aux_unit::SiteId;
use mirror_core::event::Event;
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_core::ControlMsg;
use mirror_echo::channel::{EventChannel, Subscriber};
use mirror_echo::resilient::{LinkHealth, LinkMonitor};
use mirror_echo::wire::SharedEvent;
use mirror_ede::Snapshot;

use crate::clock::RuntimeClock;
use crate::durability::{DurabilityConfig, Journal, ResyncOutcome, ResyncSource};
use crate::site::{CentralSite, MirrorSite};

/// Cluster start-up configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of mirror sites.
    pub mirrors: u16,
    /// Initial mirroring configuration installed at every site.
    pub kind: MirrorFnKind,
    /// Failure detection: a mirror missing this many consecutive
    /// checkpoint rounds is declared failed and excluded (0 = disabled,
    /// the paper's timeout-free default).
    pub suspect_after: u32,
    /// Durable journaling of the central site's mirrored events (`None` =
    /// the paper's in-memory-only protocol). With a store configured,
    /// [`Cluster::resync_mirror`] heals outages longer than one commit
    /// interval from the log, and [`Cluster::recover_site`] cold-starts
    /// mirrors from snapshot + replay without a live central seed.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { mirrors: 1, kind: MirrorFnKind::Simple, suspect_after: 0, durability: None }
    }
}

/// Point-in-time statistics for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteStats {
    /// Events the EDE processed.
    pub processed: u64,
    /// Events mirrored onto outgoing channels.
    pub mirrored: u64,
    /// Snapshots served.
    pub snapshots: u64,
    /// Adaptation directives applied.
    pub adaptations: u64,
    /// Mean update delay so far (µs; central only in practice).
    pub mean_update_delay_us: f64,
    /// Initial-state requests answered by this site's gateway.
    pub requests_served: u64,
    /// Mean gateway request latency, submit to reply (µs).
    pub mean_request_latency_us: f64,
    /// Gateway requests answered from the epoch-keyed snapshot cache.
    pub snapshot_cache_hits: u64,
    /// Gateway requests that had to capture the live state.
    pub snapshot_cache_misses: u64,
}

/// Point-in-time statistics across a running cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// The central site.
    pub central: SiteStats,
    /// Each mirror, in site order.
    pub mirrors: Vec<SiteStats>,
    /// Last committed checkpoint at the coordinator.
    pub committed: Option<mirror_core::timestamp::VectorTimestamp>,
    /// Mirrors declared failed.
    pub failed_mirrors: Vec<SiteId>,
    /// Transport link health per bridged mirror (empty for purely
    /// in-process clusters).
    pub links: Vec<(SiteId, LinkHealth)>,
}

/// A running in-process cluster.
pub struct Cluster {
    clock: RuntimeClock,
    central: CentralSite,
    mirrors: Vec<MirrorSite>,
    /// Mirror site ids retired by promotion (kept for index stability).
    retired: Vec<SiteId>,
    /// Kept so late mirror processes (e.g. over a bridge) can join. The
    /// data channel carries [`SharedEvent`]s: one publish per mirrored
    /// event, one `Arc` clone per subscriber, one wire encoding across
    /// every attached bridge.
    data: EventChannel<SharedEvent>,
    ctrl_down: EventChannel<ControlMsg>,
    ctrl_up: EventChannel<ControlMsg>,
    /// The durable-store configuration the cluster was started with, kept
    /// for [`recover_site`](Cluster::recover_site).
    durability: Option<DurabilityConfig>,
}

impl Cluster {
    /// Start a cluster.
    pub fn start(cfg: ClusterConfig) -> Self {
        let clock = RuntimeClock::new();
        let data = EventChannel::new("cluster.data");
        let ctrl_down = EventChannel::new("cluster.ctrl.down");
        let ctrl_up = EventChannel::new("cluster.ctrl.up");

        // Mirrors first, so their subscriptions exist before the central
        // publishes anything.
        let mut mirrors = Vec::with_capacity(cfg.mirrors as usize);
        for site in 1..=cfg.mirrors {
            let mut aux = MirrorConfig::default().build_mirror(site);
            aux.install_kind(cfg.kind);
            mirrors.push(MirrorSite::start(
                MirrorHandle::new(aux),
                clock.clone(),
                &data,
                &ctrl_down,
                ctrl_up.publisher(),
            ));
        }

        let sites: Vec<SiteId> = (1..=cfg.mirrors).collect();
        let mut aux = MirrorConfig::default().build_central(sites);
        aux.install_kind(cfg.kind);
        aux.set_suspect_after(cfg.suspect_after);
        let central = match &cfg.durability {
            Some(dcfg) => {
                let journal = Journal::open(dcfg)
                    .unwrap_or_else(|e| panic!("open durable store at {:?}: {e}", dcfg.dir));
                CentralSite::start_journaled(
                    MirrorHandle::new(aux),
                    clock.clone(),
                    data.publisher(),
                    ctrl_down.publisher(),
                    &ctrl_up,
                    std::sync::Arc::new(journal),
                )
            }
            None => CentralSite::start(
                MirrorHandle::new(aux),
                clock.clone(),
                data.publisher(),
                ctrl_down.publisher(),
                &ctrl_up,
            ),
        };

        Cluster {
            clock,
            central,
            mirrors,
            retired: Vec::new(),
            data,
            ctrl_down,
            ctrl_up,
            durability: cfg.durability,
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &RuntimeClock {
        &self.clock
    }

    /// The central site.
    pub fn central(&self) -> &CentralSite {
        &self.central
    }

    /// Mirror sites, in site-id order (site 1 first).
    pub fn mirrors(&self) -> &[MirrorSite] {
        &self.mirrors
    }

    /// The intra-cluster channels (for attaching bridged remote mirrors).
    pub fn channels(
        &self,
    ) -> (&EventChannel<SharedEvent>, &EventChannel<ControlMsg>, &EventChannel<ControlMsg>) {
        (&self.data, &self.ctrl_down, &self.ctrl_up)
    }

    /// Submit one source event to the central site.
    pub fn submit(&self, event: Event) {
        self.central.submit(event);
    }

    /// Subscribe to the regular-client update stream.
    pub fn subscribe_updates(&self) -> Subscriber<Event> {
        self.central.subscribe_updates()
    }

    /// Serve an initial-state request from the given mirror (0 = central —
    /// any site can answer, which is the point of mirroring).
    pub fn snapshot(&self, site: SiteId) -> Snapshot {
        if site == 0 {
            self.central.snapshot()
        } else {
            self.mirrors[(site - 1) as usize].snapshot()
        }
    }

    /// A point-in-time statistics snapshot across the cluster.
    pub fn stats(&self) -> ClusterStats {
        use std::sync::atomic::Ordering;
        let site = |c: &crate::site::SiteCounters| SiteStats {
            processed: c.processed.load(Ordering::Relaxed),
            mirrored: c.mirrored.load(Ordering::Relaxed),
            snapshots: c.snapshots.load(Ordering::Relaxed),
            adaptations: c.adaptations.load(Ordering::Relaxed),
            mean_update_delay_us: c.mean_delay_us(),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            mean_request_latency_us: c.mean_request_latency_us(),
            snapshot_cache_hits: c.snapshot_cache_hits.load(Ordering::Relaxed),
            snapshot_cache_misses: c.snapshot_cache_misses.load(Ordering::Relaxed),
        };
        ClusterStats {
            central: site(self.central.counters()),
            mirrors: self.mirrors.iter().map(|m| site(m.counters())).collect(),
            committed: self.central.committed(),
            failed_mirrors: self.failed_mirrors(),
            links: self.central.link_health(),
        }
    }

    /// EDE state hashes: central first, then each mirror.
    pub fn state_hashes(&self) -> Vec<u64> {
        let mut out = vec![self.central.state_hash()];
        out.extend(self.mirrors.iter().map(|m| m.state_hash()));
        out
    }

    /// Block until every site's EDE has processed at least `n` events or
    /// the timeout expires; returns whether the target was reached.
    /// (Mirrors under selective/coalescing configurations see fewer events
    /// than the central — pass per-site expectations via `predicate`
    /// variants in tests when needed.)
    pub fn wait_all_processed(&self, n: u64, timeout: Duration) -> bool {
        self.wait(timeout, |c| {
            c.central.processed() >= n
                && c.mirrors
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !c.retired.contains(&((*i as SiteId) + 1)))
                    .all(|(_, m)| m.processed() >= n)
        })
    }

    /// Block until `predicate` holds or the timeout expires.
    pub fn wait(&self, timeout: Duration, predicate: impl Fn(&Cluster) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if predicate(self) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        predicate(self)
    }

    /// Simulate a mirror crash (test/ops hook): stop the site's threads;
    /// its subscriptions drop and it stops answering checkpoint rounds, so
    /// the coordinator's failure detector (if enabled) will exclude it.
    pub fn fail_mirror(&mut self, site: SiteId) {
        assert!(site >= 1 && (site as usize) <= self.mirrors.len());
        self.mirrors[(site - 1) as usize].stop();
    }

    /// Mirrors the coordinator has declared failed.
    pub fn failed_mirrors(&self) -> Vec<SiteId> {
        self.central.failed_mirrors()
    }

    /// Register the link monitor serving a bridged mirror so
    /// [`stats`](Self::stats) reports its health.
    pub fn attach_link_monitor(&self, site: SiteId, monitor: std::sync::Arc<LinkMonitor>) {
        self.central.attach_link_monitor(site, monitor);
    }

    /// Per-mirror transport link health (bridged mirrors only).
    pub fn link_health(&self) -> Vec<(SiteId, LinkHealth)> {
        self.central.link_health()
    }

    /// Escalate a dead transport link into checkpoint-round exclusion
    /// (see [`CentralSite::declare_link_dead`]).
    pub fn declare_link_dead(&self, site: SiteId) {
        self.central.declare_link_dead(site);
    }

    /// Replay the retained suffix from send index `from_idx` onto the
    /// shared data channel. A mirror that reconnected after an outage
    /// longer than its link's retransmit window catches up this way; sites
    /// that already processed the events absorb the replays idempotently
    /// (stale vector stamps do not advance EDE state).
    ///
    /// The in-memory backup queue serves outages shorter than one commit
    /// interval; past that, the durable event log (if the cluster was
    /// started with a [`DurabilityConfig`]) serves the rest. When neither
    /// retains `from_idx`, the result is [`ResyncOutcome::Gap`] — replay
    /// would silently skip events, so the caller must seed a snapshot
    /// instead ([`rejoin_mirror`](Self::rejoin_mirror) /
    /// [`recover_site`](Self::recover_site)).
    pub fn resync_mirror(&self, from_idx: u64) -> ResyncOutcome {
        // Floor check and retransmission under ONE aux lock: checkpoint
        // commits prune under the same lock, so a commit landing between a
        // separate check and replay could move the floor past `from_idx`
        // and turn the "replayed" result into a silent gap.
        let (floor, events) = self.central.handle().with(|a| {
            let floor = a.truncation_floor();
            let events = (from_idx >= floor).then(|| a.retransmit_from(from_idx));
            (floor, events)
        });
        if let Some(events) = events {
            let n = events.len();
            let data_pub = self.data.publisher();
            for (_, e) in events {
                // Replays share the backup queue's allocation (Arc), like
                // the original sends did.
                data_pub.publish(SharedEvent::new(e));
            }
            return ResyncOutcome::Replayed { events: n, source: ResyncSource::Memory };
        }
        // The queue was pruned past from_idx: fall back to the log.
        if let Some(journal) = self.central.journal() {
            let log_first = journal.first_retained_idx();
            if log_first.is_some_and(|first| first <= from_idx) {
                match journal.replay_from(from_idx) {
                    Ok(entries) => {
                        let n = entries.len();
                        let data_pub = self.data.publisher();
                        for (_, e) in entries {
                            data_pub.publish(SharedEvent::new(e));
                        }
                        return ResyncOutcome::Replayed {
                            events: n,
                            source: ResyncSource::DurableLog,
                        };
                    }
                    Err(_) => {
                        return ResyncOutcome::Gap { first_retained: log_first };
                    }
                }
            }
            return ResyncOutcome::Gap {
                first_retained: log_first.map(|f| f.min(floor)).or(Some(floor)),
            };
        }
        ResyncOutcome::Gap { first_retained: Some(floor) }
    }

    /// Replace a failed mirror with a fresh one recovered from the central
    /// site's state (the paper's §6 recovery extension): the replacement
    /// subscribes first (missing nothing), is seeded with a snapshot from
    /// the central EDE, replays anything that arrived meanwhile, and is
    /// readmitted into checkpoint rounds.
    pub fn rejoin_mirror(&mut self, site: SiteId) {
        assert!(site >= 1 && (site as usize) <= self.mirrors.len());
        let kind_params = self.central.handle().params();
        let mut aux = MirrorConfig::with_params(kind_params).build_mirror(site);
        // Mirror rule/function config follows the central's current view.
        aux.set_rules(self.central.handle().with(|a| a.rules().clone()));
        let replacement = MirrorSite::start_seeded(
            MirrorHandle::new(aux),
            self.clock.clone(),
            &self.data,
            &self.ctrl_down,
            self.ctrl_up.publisher(),
        );
        // Subscriptions are live; now capture the recovery state and seed.
        let snapshot = self.central.snapshot();
        let frontier = snapshot.as_of.clone();
        // By-value restore: the captured flight map moves into the seed
        // instead of being deep-cloned a second time.
        replacement.seed(snapshot.into_state(), frontier);
        self.central.readmit_mirror(site);
        self.mirrors[(site - 1) as usize] = replacement;
    }

    /// Persist the central EDE state as the durable recovery snapshot
    /// (atomic replace). Bounds [`recover_site`](Self::recover_site)'s
    /// replay work to the log suffix after this point. Returns the number
    /// of flights captured; errors if the cluster has no durable store.
    pub fn persist_snapshot(&self) -> std::io::Result<usize> {
        self.central.persist_snapshot()
    }

    /// Cold-start recovery of a mirror from the durable store — no live
    /// seed from the central EDE required (contrast
    /// [`rejoin_mirror`](Self::rejoin_mirror), which snapshots the running
    /// central): the replacement subscribes first (missing nothing), its
    /// state is rebuilt from the persisted snapshot plus a full replay of
    /// the retained log suffix, and it is readmitted into checkpoint
    /// rounds. Stale replays are absorbed by the EDE's idempotent
    /// per-flight guards, so over-replay converges to the live peers'
    /// state hash.
    ///
    /// Returns the number of log entries replayed into the recovered
    /// state. Errors if the cluster was started without a
    /// [`DurabilityConfig`] or the store cannot be read.
    pub fn recover_site(&mut self, site: SiteId) -> std::io::Result<usize> {
        assert!(site >= 1 && (site as usize) <= self.mirrors.len());
        let dir = self.durability.as_ref().map(|d| d.dir.clone()).ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::Unsupported, "cluster has no durable store")
        })?;

        let kind_params = self.central.handle().params();
        let mut aux = MirrorConfig::with_params(kind_params).build_mirror(site);
        aux.set_rules(self.central.handle().with(|a| a.rules().clone()));
        let replacement = MirrorSite::start_seeded(
            MirrorHandle::new(aux),
            self.clock.clone(),
            &self.data,
            &self.ctrl_down,
            self.ctrl_up.publisher(),
        );
        // Subscriptions are live; rebuild state from disk and seed it.
        // Anything published between here and the seed install is buffered
        // by the awaiting-seed main thread and replayed on top.
        //
        // With a live journal the recovery read MUST go through it: its
        // lock-protected EventLog serves the replay, so concurrent
        // publishes keep journaling safely. `mirror_store::recover` —
        // which opens a second EventLog on the directory and runs
        // *destructive* crash repair, corrupting a log that is still being
        // appended to — is reserved for the no-live-writer case (e.g. the
        // journaled central was stopped, or replaced by promotion).
        let recovered = match self.central.journal() {
            Some(j) => j.recover()?,
            None => mirror_store::recover(&dir)?,
        };
        replacement.seed(recovered.state, recovered.frontier);
        self.central.readmit_mirror(site);
        self.mirrors[(site - 1) as usize] = replacement;
        Ok(recovered.replayed)
    }

    /// Simulate a central-site crash (test/ops hook): stop its threads.
    /// The stream stalls until [`promote_mirror`](Self::promote_mirror)
    /// installs a new coordinator.
    pub fn fail_central(&mut self) {
        self.central.stop();
    }

    /// Promote a mirror to be the new central site — the deepest payoff of
    /// mirroring: every site holds the replicated state, so any of them
    /// can take over coordination. The promoted mirror's state seeds the
    /// new coordinator; the mirror itself is retired from the roster and
    /// the survivors keep their subscriptions (data and control flow from
    /// the new coordinator through the same channels).
    ///
    /// Returns the site ids of the mirrors remaining under the new
    /// coordinator. Source traffic submitted after this call flows through
    /// the new central site.
    pub fn promote_mirror(&mut self, site: SiteId) -> Vec<SiteId> {
        assert!(site >= 1 && (site as usize) <= self.mirrors.len());
        let idx = (site - 1) as usize;

        // Retire the promoted mirror FIRST, after quiescing: wait for its
        // processed counter to stop advancing (in-flight events draining
        // through the pumps), then stop() — the aux and main threads
        // process everything already delivered before exiting — then
        // snapshot. The seed thus includes every event the old central
        // broadcast, so the new coordinator is not behind the survivors.
        let mut last = self.mirrors[idx].processed();
        let mut stable = 0;
        let deadline = Instant::now() + Duration::from_secs(2);
        while stable < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            let now = self.mirrors[idx].processed();
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
        }
        self.mirrors[idx].stop();
        let snapshot = self.mirrors[idx].snapshot();

        // Survivors: every mirror except the promoted one (stopped sites
        // stay in the vec as tombstones to keep site-id indexing stable;
        // callers should not address them again).
        let survivors: Vec<SiteId> = (1..=self.mirrors.len() as SiteId)
            .filter(|&s| s != site && !self.retired.contains(&s))
            .collect();
        self.retired.push(site);

        // New coordinator: seeded from the promoted mirror's state; its
        // subscriptions (ctrl-up) attach before any new traffic flows.
        let params = self.central.handle().params();
        let rules = self.central.handle().with(|a| a.rules().clone());
        let mut aux = MirrorConfig::with_params(params).build_central(survivors.clone());
        aux.set_rules(rules);
        let replacement = CentralSite::start_seeded(
            MirrorHandle::new(aux),
            self.clock.clone(),
            self.data.publisher(),
            self.ctrl_down.publisher(),
            &self.ctrl_up,
        );
        let frontier = snapshot.as_of.clone();
        replacement.seed(snapshot.into_state(), frontier);
        self.central = replacement;
        survivors
    }

    /// Stop every site and join all threads.
    pub fn shutdown(mut self) {
        self.central.stop();
        for m in &mut self.mirrors {
            m.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{FlightStatus, PositionFix};

    fn fix() -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 10.0 }
    }

    #[test]
    fn simple_mirroring_replicates_state_to_all_sites() {
        let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
        for seq in 1..=200u64 {
            cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
        }
        assert!(
            cluster.wait_all_processed(200, Duration::from_secs(5)),
            "all sites must process 200 events; got central={} mirrors={:?}",
            cluster.central().processed(),
            cluster.mirrors().iter().map(|m| m.processed()).collect::<Vec<_>>()
        );
        let hashes = cluster.state_hashes();
        assert!(hashes.windows(2).all(|w| w[0] == w[1]), "hashes diverged: {hashes:?}");
        cluster.shutdown();
    }

    #[test]
    fn regular_clients_receive_updates() {
        let cluster = Cluster::start(ClusterConfig::default());
        let updates = cluster.subscribe_updates();
        for seq in 1..=50u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        let mut got = 0;
        while got < 50 {
            match updates.recv_timeout(Duration::from_secs(5)) {
                Some(_) => got += 1,
                None => break,
            }
        }
        assert_eq!(got, 50);
        assert!(cluster.central().counters().mean_delay_us() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn thin_client_recovers_from_mirror_snapshot() {
        let cluster = Cluster::start(ClusterConfig::default());
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, (seq % 5) as u32, fix()));
        }
        cluster.submit(Event::delta_status(1, 2, FlightStatus::Landed));
        assert!(cluster.wait_all_processed(101, Duration::from_secs(5)));
        let snap = cluster.snapshot(1);
        assert_eq!(snap.flight_count(), 5);
        let restored = snap.restore();
        assert_eq!(restored.state_hash(), cluster.state_hashes()[1]);
        cluster.shutdown();
    }

    #[test]
    fn checkpoints_prune_backup_queues_at_runtime() {
        let cluster = Cluster::start(ClusterConfig::default());
        cluster.central().handle().set_params(false, 1, 10); // checkpoint every 10
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));
        // Give the final checkpoint round a moment to commit.
        let committed = cluster.wait(Duration::from_secs(5), |c| {
            c.central().committed().map(|t| t.get(0) >= 90).unwrap_or(false)
        });
        assert!(committed, "checkpoint must commit most of the stream");
        let backup_len = cluster.central().handle().with(|a| a.backup_len());
        assert!(backup_len <= 20, "backup queue must be pruned, len={backup_len}");
        cluster.shutdown();
    }

    #[test]
    fn stats_snapshot_reflects_activity() {
        let cluster = Cluster::start(ClusterConfig::default());
        for seq in 1..=60u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        assert!(cluster.wait_all_processed(60, Duration::from_secs(5)));
        let _ = cluster.snapshot(1);
        let stats = cluster.stats();
        assert_eq!(stats.central.processed, 60);
        assert_eq!(stats.central.mirrored, 60);
        assert_eq!(stats.mirrors.len(), 1);
        assert_eq!(stats.mirrors[0].processed, 60);
        assert_eq!(stats.mirrors[0].snapshots, 1);
        assert!(stats.failed_mirrors.is_empty());
        assert!(stats.central.mean_update_delay_us > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn selective_mirroring_thins_mirror_traffic_live() {
        let cluster = Cluster::start(ClusterConfig {
            mirrors: 1,
            kind: MirrorFnKind::Selective { overwrite: 10 },
            suspect_after: 0,
            durability: None,
        });
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, 7, fix()));
        }
        // Central processes all 100; the mirror only the overwrite
        // survivors (~10).
        assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= 100));
        assert!(cluster.wait(Duration::from_secs(5), |c| c.mirrors()[0].processed() >= 10));
        std::thread::sleep(Duration::from_millis(50));
        let mirror_seen = cluster.mirrors()[0].processed();
        assert!(mirror_seen <= 15, "mirror saw {mirror_seen} events, expected ~10");
        cluster.shutdown();
    }
}
