//! In-process cluster assembly.
//!
//! [`Cluster::start`] brings up the paper's Figure-2 topology on threads:
//! one central site, *n* mirror sites, a shared data channel
//! (central → mirrors), a control downlink (CHKPT/COMMIT broadcasts) and a
//! control uplink (CHKPT_REP replies). All sites share one
//! [`RuntimeClock`] so update delays are comparable.
//!
//! Membership is **elastic**: the mirror set is not frozen at start-up.
//! Every site's lifecycle lives in an epoch-stamped
//! [`MembershipView`] owned by a
//! [`MembershipRegistry`], and every membership operation
//! ([`add_mirror`](Cluster::add_mirror), [`fail_mirror`](Cluster::fail_mirror),
//! [`rejoin_mirror`](Cluster::rejoin_mirror),
//! [`retire_mirror`](Cluster::retire_mirror),
//! [`promote_mirror`](Cluster::promote_mirror),
//! [`recover_site`](Cluster::recover_site)) takes `&self` and returns a
//! typed [`MembershipError`] instead of panicking on a bad site id — so a
//! caller holding a shared `Cluster` (gateway, balancer, the
//! [`ScalePolicy`] drain in
//! [`poll_scale`](Cluster::poll_scale)) can change cluster *capacity* while
//! traffic flows.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use mirror_core::adapt::{ScaleDecision, ScalePolicy};
use mirror_core::api::{MirrorConfig, MirrorHandle};
use mirror_core::aux_unit::SiteId;
use mirror_core::event::Event;
use mirror_core::membership::{MembershipError, MembershipRegistry, MembershipView, SiteState};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_core::ControlMsg;
use mirror_echo::channel::{EventChannel, Subscriber};
use mirror_echo::resilient::{LinkHealth, LinkMonitor};
use mirror_echo::wire::SharedEvent;
use mirror_ede::Snapshot;
use mirror_edge::{EdgeConfig, EdgeServer, EdgeStats};

use crate::clock::RuntimeClock;
use crate::durability::{DurabilityConfig, Journal, ResyncOutcome, ResyncSource};
use crate::failover::{CtrlCadence, FailoverEvent, FailoverPolicy};
use crate::requests::RequestGate;
use crate::site::{CentralSite, MirrorSite, DEFAULT_MAIN_RING_CAPACITY};

/// Cluster start-up configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of mirror sites.
    pub mirrors: u16,
    /// Initial mirroring configuration installed at every site.
    pub kind: MirrorFnKind,
    /// Failure detection: a mirror missing this many consecutive
    /// checkpoint rounds is declared failed and excluded (0 = disabled,
    /// the paper's timeout-free default).
    pub suspect_after: u32,
    /// Durable journaling of the central site's mirrored events (`None` =
    /// the paper's in-memory-only protocol). With a store configured,
    /// [`Cluster::resync_mirror`] heals outages longer than one commit
    /// interval from the log, and [`Cluster::recover_site`] cold-starts
    /// mirrors from snapshot + replay without a live central seed.
    pub durability: Option<DurabilityConfig>,
    /// Elastic capacity policy (`None` = fixed mirror set). With a policy
    /// installed, the central adaptation controller emits
    /// [`ScaleDecision`]s on sustained pending-request pressure;
    /// [`Cluster::poll_scale`] turns them into mirror spawn/retire.
    pub scale: Option<ScalePolicy>,
    /// Automatic central-site failover (`None` = the paper's protocol:
    /// coordinator death needs operator intervention). With a policy
    /// installed, the central emits idle heartbeat rounds, a watcher
    /// tracks the control-downlink cadence, and
    /// [`Cluster::poll_failover`] declares death on sustained silence and
    /// self-promotes the lowest live mirror at a bumped leadership term.
    pub failover: Option<FailoverPolicy>,
    /// Capacity of each site's aux→dispatcher ring — the depth of the
    /// ingest pipeline between the receiving task and the sharded apply
    /// path. Also the refusal threshold for
    /// [`Cluster::try_submit`]: submissions are refused with a typed
    /// [`SiteOverload`](crate::site::SiteOverload) once this many events
    /// are queued, so saturation surfaces as backpressure the producer
    /// can act on instead of unbounded queueing or silent spinning.
    /// Rounded up to a power of two internally.
    pub inbox_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            suspect_after: 0,
            durability: None,
            scale: None,
            failover: None,
            inbox_capacity: DEFAULT_MAIN_RING_CAPACITY,
        }
    }
}

/// Point-in-time statistics for one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteStats {
    /// Events the EDE processed.
    pub processed: u64,
    /// Events mirrored onto outgoing channels.
    pub mirrored: u64,
    /// Snapshots served.
    pub snapshots: u64,
    /// Adaptation directives applied.
    pub adaptations: u64,
    /// Mean update delay so far (µs; central only in practice).
    pub mean_update_delay_us: f64,
    /// Initial-state requests answered by this site's gateway.
    pub requests_served: u64,
    /// Mean gateway request latency, submit to reply (µs).
    pub mean_request_latency_us: f64,
    /// Gateway requests answered from the epoch-keyed snapshot cache.
    pub snapshot_cache_hits: u64,
    /// Gateway requests that had to capture the live state.
    pub snapshot_cache_misses: u64,
    /// Events applied by each EDE shard, in shard order.
    pub shard_applied: Vec<u64>,
    /// Shard load imbalance: busiest shard's applied count over the
    /// per-shard mean (1.0 = perfectly even, 0.0 = nothing applied yet).
    pub shard_imbalance: f64,
    /// Staleness gauge, in events: how far this site's applied-event count
    /// trails the central's at the stats snapshot (0 for the central row).
    /// Under selective/coalescing mirror configurations a mirror
    /// legitimately processes fewer events than the central, so a steady
    /// nonzero value here reflects thinning, not lag — watch the *trend*.
    pub staleness_events: u64,
    /// Staleness gauge, in µs: how far this site's last
    /// frontier-advancing apply trails the central's (0 for the central
    /// row, and 0 until both sites have applied at least once).
    pub staleness_us: u64,
}

/// Point-in-time statistics across a running cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// The central site.
    pub central: SiteStats,
    /// Each attached mirror, in site-id order (aligned with
    /// [`mirror_ids`](Self::mirror_ids)).
    pub mirrors: Vec<SiteStats>,
    /// The site ids the `mirrors` entries describe.
    pub mirror_ids: Vec<SiteId>,
    /// Membership epoch in force when the snapshot was taken.
    pub epoch: u64,
    /// Last committed checkpoint at the coordinator.
    pub committed: Option<mirror_core::timestamp::VectorTimestamp>,
    /// Mirrors declared failed.
    pub failed_mirrors: Vec<SiteId>,
    /// Transport link health per bridged mirror (empty for purely
    /// in-process clusters).
    pub links: Vec<(SiteId, LinkHealth)>,
    /// Edge delivery tiers attached via [`Cluster::serve_edge`], keyed by
    /// the site each one fronts (0 = central; edges re-pointed by a
    /// promotion report their new central attachment).
    pub edges: Vec<(SiteId, EdgeStats)>,
}

/// One membership change performed by [`Cluster::poll_scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// A fresh mirror was spawned, seeded and admitted.
    Spawned {
        /// The new mirror's site id.
        site: SiteId,
        /// Membership epoch after the admission.
        epoch: u64,
    },
    /// A mirror was retired (scale-in on quiesce).
    Retired {
        /// The retired mirror's site id.
        site: SiteId,
        /// Membership epoch after the retirement.
        epoch: u64,
    },
}

/// Read a lock, tolerating poisoning (a panicked site thread must not
/// take the whole cluster's observability down with it).
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write counterpart of [`read`].
fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// A read guard dereferencing to one attached mirror runtime (holds the
/// site table's read lock for its lifetime — don't keep it across
/// blocking waits).
pub struct MirrorRef<'a> {
    guard: RwLockReadGuard<'a, BTreeMap<SiteId, MirrorSite>>,
    site: SiteId,
}

impl std::ops::Deref for MirrorRef<'_> {
    type Target = MirrorSite;
    fn deref(&self) -> &MirrorSite {
        &self.guard[&self.site]
    }
}

/// A running in-process cluster.
///
/// All membership operations take `&self`: the site tables live behind
/// read-write locks and the membership registry swaps immutable
/// epoch-stamped views, so concurrent readers (stats, routing, waits)
/// never block a membership change for long and never observe a
/// half-applied one.
pub struct Cluster {
    clock: RuntimeClock,
    central: RwLock<CentralSite>,
    /// Attached mirror runtimes by site id. Retired sites are removed;
    /// failed (suspect) sites remain attached — stopped — until a rejoin
    /// replaces them, matching the paper's recovery story.
    sites: RwLock<BTreeMap<SiteId, MirrorSite>>,
    /// Epoch-stamped membership: the single source of truth for which
    /// sites exist and in what lifecycle state.
    membership: MembershipRegistry,
    /// The scale policy the cluster was started with (bounds re-checked at
    /// [`poll_scale`](Self::poll_scale) time).
    scale: Option<ScalePolicy>,
    /// Kept so late mirror processes (e.g. over a bridge) can join. The
    /// data channel carries [`SharedEvent`]s: one publish per mirrored
    /// event, one `Arc` clone per subscriber, one wire encoding across
    /// every attached bridge.
    data: EventChannel<SharedEvent>,
    ctrl_down: EventChannel<ControlMsg>,
    ctrl_up: EventChannel<ControlMsg>,
    /// The durable-store configuration the cluster was started with, kept
    /// for [`recover_site`](Cluster::recover_site).
    durability: Option<DurabilityConfig>,
    /// Failover policy the cluster was started with (`None` = manual).
    failover: Option<FailoverPolicy>,
    /// The leadership term of the coordinator currently in force. Bumped
    /// by every promotion; the successor coordinates at the new term and
    /// stale-term frames from the fenced predecessor are rejected
    /// everywhere.
    term: AtomicU64,
    /// Observed CHKPT/COMMIT cadence on the control downlink (fed by the
    /// watcher thread when failover is armed).
    cadence: Arc<CtrlCadence>,
    /// Admission gate shared with request gateways: closed for the span
    /// of a takeover so initial-state requests park instead of racing the
    /// coordinator swap.
    request_gate: Arc<RequestGate>,
    /// Serializes promotions (manual and automatic): two racing takeovers
    /// must resolve to one coherent coordinator, never a wedge.
    promotion: parking_lot::Mutex<()>,
    /// Control-downlink watcher thread (failover armed only).
    watcher: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Stop flag for the watcher thread.
    watcher_stop: Arc<AtomicBool>,
    /// Configured aux→dispatcher ring capacity, applied to every site this
    /// cluster constructs (start, scale-out, rejoin, recovery, promotion).
    inbox_capacity: usize,
    /// Edge delivery tiers attached via [`serve_edge`](Self::serve_edge),
    /// keyed by the site each one fronts. Promotions re-point entries
    /// attached to the promoted site at the successor central.
    edges: parking_lot::Mutex<Vec<(SiteId, Arc<EdgeServer>)>>,
}

impl Cluster {
    /// Start a cluster.
    pub fn start(cfg: ClusterConfig) -> Self {
        let clock = RuntimeClock::new();
        let data = EventChannel::new("cluster.data");
        let ctrl_down = EventChannel::new("cluster.ctrl.down");
        let ctrl_up = EventChannel::new("cluster.ctrl.up");

        // Mirrors first, so their subscriptions exist before the central
        // publishes anything.
        let mut sites = BTreeMap::new();
        for site in 1..=cfg.mirrors {
            let mut aux = MirrorConfig::default().build_mirror(site);
            aux.install_kind(cfg.kind);
            sites.insert(
                site,
                MirrorSite::start_inner(
                    MirrorHandle::new(aux),
                    clock.clone(),
                    &data,
                    &ctrl_down,
                    ctrl_up.publisher(),
                    false,
                    cfg.inbox_capacity,
                ),
            );
        }

        let roster: Vec<SiteId> = (1..=cfg.mirrors).collect();
        let mut aux = MirrorConfig::default().build_central(roster);
        aux.install_kind(cfg.kind);
        aux.set_suspect_after(cfg.suspect_after);
        if let Some(policy) = cfg.scale {
            aux.set_scale_policy(policy);
        }
        if let Some(policy) = cfg.failover {
            // Failover infers coordinator death from control-downlink
            // silence, so silence must mean death: arm idle heartbeat
            // rounds at the policy's cadence.
            aux.set_heartbeat_after(policy.heartbeat_ticks);
        }
        let journal = cfg.durability.as_ref().map(|dcfg| {
            let journal = Journal::open(dcfg)
                .unwrap_or_else(|e| panic!("open durable store at {:?}: {e}", dcfg.dir));
            std::sync::Arc::new(journal)
        });
        let central = CentralSite::start_inner(
            MirrorHandle::new(aux),
            clock.clone(),
            data.publisher(),
            ctrl_down.publisher(),
            &ctrl_up,
            false,
            journal,
            cfg.inbox_capacity,
        );

        let cadence = Arc::new(CtrlCadence::new(clock.now_us()));
        let watcher_stop = Arc::new(AtomicBool::new(false));
        let watcher = cfg.failover.map(|_| {
            // The watcher is a plain downlink subscriber: it sees exactly
            // the CHKPT/COMMIT traffic the mirrors see, so its cadence
            // estimate matches what a mirror-side detector would observe.
            let sub = ctrl_down.subscribe();
            let cadence = Arc::clone(&cadence);
            let clock = clock.clone();
            let stop = Arc::clone(&watcher_stop);
            std::thread::Builder::new()
                .name("failover-watch".into())
                .spawn(move || {
                    use mirror_echo::channel::RecvStatus;
                    loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match sub.recv_status(Duration::from_millis(20)) {
                            RecvStatus::Msg(_) => cadence.on_ctrl(clock.now_us()),
                            RecvStatus::Timeout => continue,
                            RecvStatus::Disconnected => break,
                        }
                    }
                })
                .expect("spawn failover watcher")
        });

        Cluster {
            clock,
            central: RwLock::new(central),
            sites: RwLock::new(sites),
            membership: MembershipRegistry::new(cfg.mirrors),
            scale: cfg.scale,
            data,
            ctrl_down,
            ctrl_up,
            durability: cfg.durability,
            failover: cfg.failover,
            term: AtomicU64::new(0),
            cadence,
            request_gate: Arc::new(RequestGate::new()),
            promotion: parking_lot::Mutex::new(()),
            watcher: parking_lot::Mutex::new(watcher),
            watcher_stop,
            inbox_capacity: cfg.inbox_capacity,
            edges: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &RuntimeClock {
        &self.clock
    }

    /// The central site (read guard; clone handles out of it rather than
    /// holding it across blocking work).
    pub fn central(&self) -> RwLockReadGuard<'_, CentralSite> {
        read(&self.central)
    }

    /// The mirror runtime for `site`, if one is attached.
    pub fn try_mirror(&self, site: SiteId) -> Option<MirrorRef<'_>> {
        let guard = read(&self.sites);
        guard.contains_key(&site).then_some(MirrorRef { guard, site })
    }

    /// The mirror runtime for `site`. Panics if no such site is attached —
    /// a convenience for tests and examples that just created the site;
    /// fallible callers use [`try_mirror`](Self::try_mirror).
    pub fn mirror(&self, site: SiteId) -> MirrorRef<'_> {
        self.try_mirror(site).unwrap_or_else(|| panic!("no mirror with site id {site}"))
    }

    /// Site ids with an attached mirror runtime, ascending (includes
    /// stopped/suspect sites awaiting rejoin; excludes retired ones).
    pub fn mirror_ids(&self) -> Vec<SiteId> {
        read(&self.sites).keys().copied().collect()
    }

    /// The current membership view (cheap `Arc` clone; see
    /// [`MembershipView`]).
    pub fn membership(&self) -> std::sync::Arc<MembershipView> {
        self.membership.view()
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// The intra-cluster channels (for attaching bridged remote mirrors).
    pub fn channels(
        &self,
    ) -> (&EventChannel<SharedEvent>, &EventChannel<ControlMsg>, &EventChannel<ControlMsg>) {
        (&self.data, &self.ctrl_down, &self.ctrl_up)
    }

    /// Submit one source event to the central site.
    pub fn submit(&self, event: Event) {
        read(&self.central).submit(event);
    }

    /// Submit one source event unless the central site's ingest pipeline
    /// is saturated — the backpressure-aware variant of
    /// [`submit`](Self::submit). Refusals carry the observed depth and the
    /// configured [`ClusterConfig::inbox_capacity`]; accepted events are
    /// never dropped. See [`CentralSite::try_submit`].
    pub fn try_submit(&self, event: Event) -> Result<(), crate::site::SiteOverload> {
        read(&self.central).try_submit(event)
    }

    /// Attach a massive-fan-out edge delivery tier to `site` (0 = the
    /// central): every state-changing update the site's EDE applies is
    /// published into a fresh [`EdgeServer`], which fans it to its
    /// subscribers with per-client conflation and sequence/ack resume, and
    /// reseeds late or gapped clients from the site's live state
    /// (frontier-before-freeze capture, same as the request gateway).
    ///
    /// The returned server is also registered with the cluster:
    /// [`stats`](Self::stats) reports its [`EdgeStats`], a promotion of
    /// `site` re-points it at the successor central, and
    /// [`shutdown`](Self::shutdown) stops it.
    pub fn serve_edge(
        &self,
        site: SiteId,
        cfg: EdgeConfig,
    ) -> Result<Arc<EdgeServer>, MembershipError> {
        let (provider, updates): (Box<dyn mirror_edge::StateProvider>, Subscriber<Event>) =
            if site == mirror_core::CENTRAL_SITE {
                let central = read(&self.central);
                (
                    Box::new(crate::statesync::SyncStateProvider(central.state_sync())),
                    central.subscribe_updates(),
                )
            } else {
                match self.try_mirror(site) {
                    Some(m) => (
                        Box::new(crate::statesync::SyncStateProvider(m.state_sync())),
                        m.subscribe_updates(),
                    ),
                    None => {
                        return Err(match self.membership.view().state_of(site) {
                            Some(SiteState::Retired) => MembershipError::Retired(site),
                            Some(_) => MembershipError::NotLive(site),
                            None => MembershipError::UnknownSite(site),
                        })
                    }
                }
            };
        let edge = Arc::new(EdgeServer::start(cfg, provider));
        edge.pump_from(updates);
        self.edges.lock().push((site, Arc::clone(&edge)));
        Ok(edge)
    }

    /// Point-in-time stats for every edge tier attached via
    /// [`serve_edge`](Self::serve_edge), keyed by the site it fronts.
    pub fn edge_stats(&self) -> Vec<(SiteId, EdgeStats)> {
        self.edges.lock().iter().map(|(s, e)| (*s, e.counters().snapshot())).collect()
    }

    /// Subscribe to the regular-client update stream.
    pub fn subscribe_updates(&self) -> Subscriber<Event> {
        read(&self.central).subscribe_updates()
    }

    /// Serve an initial-state request from the given site (0 = central —
    /// any site can answer, which is the point of mirroring).
    pub fn snapshot(&self, site: SiteId) -> Result<Snapshot, MembershipError> {
        if site == mirror_core::CENTRAL_SITE {
            return Ok(read(&self.central).snapshot());
        }
        match self.try_mirror(site) {
            Some(m) => Ok(m.snapshot()),
            None => match self.membership.view().state_of(site) {
                Some(SiteState::Retired) => Err(MembershipError::Retired(site)),
                Some(_) => Err(MembershipError::NotLive(site)),
                None => Err(MembershipError::UnknownSite(site)),
            },
        }
    }

    /// A point-in-time statistics snapshot across the cluster.
    pub fn stats(&self) -> ClusterStats {
        use std::sync::atomic::Ordering;
        let site = |c: &crate::site::SiteCounters,
                    shard_applied: Vec<u64>,
                    shard_imbalance: f64,
                    central_frontier: Option<(u64, u64)>| {
            // The per-mirror staleness gauge: applied-frontier lag behind
            // the central, in events and in wall time. `None` marks the
            // central's own row (always 0 by definition).
            let (staleness_events, staleness_us) = match central_frontier {
                None => (0, 0),
                Some((central_processed, central_apply_us)) => {
                    let apply_us = c.last_apply_us.load(Ordering::Relaxed);
                    let us = if apply_us == 0 || central_apply_us == 0 {
                        0 // one side has not applied yet: no signal
                    } else {
                        central_apply_us.saturating_sub(apply_us)
                    };
                    (central_processed.saturating_sub(c.processed.load(Ordering::Relaxed)), us)
                }
            };
            SiteStats {
                processed: c.processed.load(Ordering::Relaxed),
                mirrored: c.mirrored.load(Ordering::Relaxed),
                snapshots: c.snapshots.load(Ordering::Relaxed),
                adaptations: c.adaptations.load(Ordering::Relaxed),
                mean_update_delay_us: c.mean_delay_us(),
                requests_served: c.requests_served.load(Ordering::Relaxed),
                mean_request_latency_us: c.mean_request_latency_us(),
                snapshot_cache_hits: c.snapshot_cache_hits.load(Ordering::Relaxed),
                snapshot_cache_misses: c.snapshot_cache_misses.load(Ordering::Relaxed),
                shard_applied,
                shard_imbalance,
                staleness_events,
                staleness_us,
            }
        };
        let central = read(&self.central);
        let sites = read(&self.sites);
        let frontier = (
            central.counters().processed.load(Ordering::Relaxed),
            central.counters().last_apply_us.load(Ordering::Relaxed),
        );
        ClusterStats {
            central: site(
                central.counters(),
                central.shard_applied(),
                central.shard_imbalance(),
                None,
            ),
            mirrors: sites
                .values()
                .map(|m| site(m.counters(), m.shard_applied(), m.shard_imbalance(), Some(frontier)))
                .collect(),
            mirror_ids: sites.keys().copied().collect(),
            epoch: self.membership.epoch(),
            committed: central.committed(),
            failed_mirrors: central.failed_mirrors(),
            links: central.link_health(),
            edges: self.edge_stats(),
        }
    }

    /// EDE state hashes: central first, then each attached mirror in
    /// site-id order.
    pub fn state_hashes(&self) -> Vec<u64> {
        let mut out = vec![read(&self.central).state_hash()];
        out.extend(read(&self.sites).values().map(|m| m.state_hash()));
        out
    }

    /// Block until every attached site's EDE has processed at least `n`
    /// events or the timeout expires; returns whether the target was
    /// reached. (Mirrors under selective/coalescing configurations see
    /// fewer events than the central — pass per-site expectations via
    /// `predicate` variants in tests when needed.)
    pub fn wait_all_processed(&self, n: u64, timeout: Duration) -> bool {
        self.wait(timeout, |c| {
            read(&c.central).processed() >= n && read(&c.sites).values().all(|m| m.processed() >= n)
        })
    }

    /// Block until `predicate` holds or the timeout expires.
    pub fn wait(&self, timeout: Duration, predicate: impl Fn(&Cluster) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if predicate(self) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        predicate(self)
    }

    /// Simulate a mirror crash (test/ops hook): mark the site suspect in
    /// the membership view (epoch bumped) and stop its threads; its
    /// subscriptions drop and it stops answering checkpoint rounds, so
    /// the coordinator's failure detector (if enabled) will exclude it.
    pub fn fail_mirror(&self, site: SiteId) -> Result<(), MembershipError> {
        let epoch = self.membership.suspect(site)?;
        read(&self.central).set_membership_epoch(epoch);
        if let Some(m) = write(&self.sites).get_mut(&site) {
            m.stop();
        }
        Ok(())
    }

    /// Mirrors the coordinator has declared failed.
    pub fn failed_mirrors(&self) -> Vec<SiteId> {
        read(&self.central).failed_mirrors()
    }

    /// Register the link monitor serving a bridged mirror so
    /// [`stats`](Self::stats) reports its health.
    pub fn attach_link_monitor(&self, site: SiteId, monitor: std::sync::Arc<LinkMonitor>) {
        read(&self.central).attach_link_monitor(site, monitor);
    }

    /// Per-mirror transport link health (bridged mirrors only).
    pub fn link_health(&self) -> Vec<(SiteId, LinkHealth)> {
        read(&self.central).link_health()
    }

    /// Escalate a dead transport link into checkpoint-round exclusion
    /// (see [`CentralSite::declare_link_dead`]).
    pub fn declare_link_dead(&self, site: SiteId) {
        read(&self.central).declare_link_dead(site);
    }

    /// Replay the retained suffix from send index `from_idx` onto the
    /// shared data channel. A mirror that reconnected after an outage
    /// longer than its link's retransmit window catches up this way; sites
    /// that already processed the events absorb the replays idempotently
    /// (stale vector stamps do not advance EDE state).
    ///
    /// The in-memory backup queue serves outages shorter than one commit
    /// interval; past that, the durable event log (if the cluster was
    /// started with a [`DurabilityConfig`]) serves the rest. When neither
    /// retains `from_idx`, the result is [`ResyncOutcome::Gap`] — replay
    /// would silently skip events, so the caller must seed a snapshot
    /// instead ([`rejoin_mirror`](Self::rejoin_mirror) /
    /// [`recover_site`](Self::recover_site)).
    pub fn resync_mirror(&self, from_idx: u64) -> ResyncOutcome {
        Self::resync_with(&read(&self.central), &self.data, from_idx)
    }

    /// [`resync_mirror`](Self::resync_mirror) against an already-held
    /// central guard (so membership operations never re-enter the lock).
    fn resync_with(
        central: &CentralSite,
        data: &EventChannel<SharedEvent>,
        from_idx: u64,
    ) -> ResyncOutcome {
        // Floor check and retransmission under ONE aux lock: checkpoint
        // commits prune under the same lock, so a commit landing between a
        // separate check and replay could move the floor past `from_idx`
        // and turn the "replayed" result into a silent gap.
        let (floor, events) = central.handle().with(|a| {
            let floor = a.truncation_floor();
            let events = (from_idx >= floor).then(|| a.retransmit_from(from_idx));
            (floor, events)
        });
        if let Some(events) = events {
            let n = events.len();
            let data_pub = data.publisher();
            for (_, e) in events {
                // Replays share the backup queue's allocation (Arc), like
                // the original sends did.
                data_pub.publish(SharedEvent::new(e));
            }
            return ResyncOutcome::Replayed { events: n, source: ResyncSource::Memory };
        }
        // The queue was pruned past from_idx: fall back to the log.
        if let Some(journal) = central.journal() {
            let log_first = journal.first_retained_idx();
            if log_first.is_some_and(|first| first <= from_idx) {
                match journal.replay_from(from_idx) {
                    Ok(entries) => {
                        let n = entries.len();
                        let data_pub = data.publisher();
                        for (_, e) in entries {
                            data_pub.publish(SharedEvent::new(e));
                        }
                        return ResyncOutcome::Replayed {
                            events: n,
                            source: ResyncSource::DurableLog,
                        };
                    }
                    Err(_) => {
                        return ResyncOutcome::Gap { first_retained: log_first };
                    }
                }
            }
            return ResyncOutcome::Gap {
                first_retained: log_first.map(|f| f.min(floor)).or(Some(floor)),
            };
        }
        ResyncOutcome::Gap { first_retained: Some(floor) }
    }

    /// Spawn a **fresh** mirror at the next never-used site id, mid-traffic
    /// and with no exclusive cluster access — the elastic scale-out path:
    ///
    /// 1. the new site subscribes to the data/control channels first
    ///    (missing nothing published after this point);
    /// 2. it is seeded from the central's cached seed frame (one capture
    ///    shared across an admission burst, see
    ///    [`CentralSite::seed_snapshot`]) and the data channel is replayed
    ///    from the truncation floor recorded at that frame's capture —
    ///    memory first, durable log past it — so the bounded-stale seed
    ///    converges; replayed events are absorbed idempotently by every
    ///    live site;
    /// 3. membership admits the site (bumping the epoch) and the
    ///    checkpoint coordinator gates rounds on it from the next
    ///    proposal, stamping `CHKPT`/`COMMIT` with the new epoch.
    ///
    /// The mirror inherits the central's *current* mirror parameters and
    /// rules — including any in-force adaptation directive and its
    /// generation — not the start-up defaults.
    ///
    /// Returns the new site id.
    pub fn add_mirror(&self) -> Result<SiteId, MembershipError> {
        let site = self.membership.next_site_id();
        let central = read(&self.central);
        let params = central.handle().params();
        let mut aux = MirrorConfig::with_params(params).build_mirror(site);
        aux.set_rules(central.handle().with(|a| a.rules().clone()));
        let replacement = MirrorSite::start_inner(
            MirrorHandle::new(aux),
            self.clock.clone(),
            &self.data,
            &self.ctrl_down,
            self.ctrl_up.publisher(),
            true,
            self.inbox_capacity,
        );
        // Subscriptions are live; seed from the shared cached frame.
        let (served, floor) = central.seed_snapshot();
        let seed_as_of = served.as_of.clone();
        replacement.seed(served.into_snapshot().into_state(), seed_as_of.clone());
        // Bridge the cached capture to subscribe-time: replay from the
        // floor recorded at the capture. On a gap (floor pruned from
        // memory AND log meanwhile) catch up with a delta from the seed's
        // frontier — the seed capture is a marked delta base, so only the
        // flights that changed since move; if the base was forgotten, fall
        // back to a fresh full capture, which is taken after the
        // subscriptions and therefore needs no replay.
        if let ResyncOutcome::Gap { .. } = Self::resync_with(&central, &self.data, floor) {
            match central.state_sync().delta_since(&seed_as_of) {
                Some((delta, _hit)) => replacement.apply_delta(delta.into_delta()),
                None => {
                    let fresh = central.state_sync().capture_now();
                    let frontier = fresh.as_of.clone();
                    replacement.seed(fresh.into_snapshot().into_state(), frontier);
                }
            }
        }
        let epoch = self.membership.admit(site)?;
        central.admit_mirror(site, epoch);
        write(&self.sites).insert(site, replacement);
        Ok(site)
    }

    /// Reserve and admit the next never-used site id for a mirror
    /// *process* attaching over a bridge: the cluster runs no local
    /// threads for it, but checkpoint rounds gate on it from the next
    /// proposal at the bumped epoch, and the remote endpoint attaches its
    /// channels against that live epoch.
    pub fn admit_bridged_mirror(&self) -> Result<SiteId, MembershipError> {
        let site = self.membership.next_site_id();
        let epoch = self.membership.admit(site)?;
        read(&self.central).admit_mirror(site, epoch);
        Ok(site)
    }

    /// Permanently retire a mirror (scale-in): membership moves it to
    /// [`SiteState::Retired`] (its id is never reused), the checkpoint
    /// coordinator drops it from round completion *without* marking it
    /// failed, and its threads stop. In-flight rounds it was gating
    /// restart via the coordinator's wedge detection.
    pub fn retire_mirror(&self, site: SiteId) -> Result<(), MembershipError> {
        let epoch = self.membership.retire(site)?;
        read(&self.central).retire_mirror(site, epoch);
        let removed = write(&self.sites).remove(&site);
        if let Some(mut m) = removed {
            m.stop();
        }
        Ok(())
    }

    /// Drain the adaptation controller's pending [`ScaleDecision`]s and
    /// apply them: spawn on sustained pressure, retire the newest live
    /// mirror on sustained quiesce (bounds re-checked against the current
    /// membership view, so a stale directive cannot retire below the
    /// policy floor). Returns the membership changes performed.
    ///
    /// Centralized decision, caller-paced application: any thread holding
    /// the shared cluster may pump this — no `&mut Cluster` required.
    pub fn poll_scale(&self) -> Vec<ScaleEvent> {
        let directives = read(&self.central).take_scale_directives();
        let mut events = Vec::new();
        for d in directives {
            match d {
                ScaleDecision::SpawnMirror => {
                    if let Ok(site) = self.add_mirror() {
                        events.push(ScaleEvent::Spawned { site, epoch: self.membership.epoch() });
                    }
                }
                ScaleDecision::RetireMirror => {
                    let min = self.scale.map(|p| p.min_mirrors).unwrap_or(1);
                    let live = self.membership.view().live_mirrors();
                    if live.len() > min {
                        if let Some(&site) = live.last() {
                            if self.retire_mirror(site).is_ok() {
                                events.push(ScaleEvent::Retired {
                                    site,
                                    epoch: self.membership.epoch(),
                                });
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Replace a failed mirror with a fresh one recovered from the central
    /// site's state (the paper's §6 recovery extension): the replacement
    /// subscribes first (missing nothing), is seeded with a snapshot from
    /// the central EDE, replays anything that arrived meanwhile, and is
    /// readmitted into checkpoint rounds at a bumped membership epoch.
    pub fn rejoin_mirror(&self, site: SiteId) -> Result<(), MembershipError> {
        let epoch = self.membership.restore(site)?;
        let central = read(&self.central);
        central.set_membership_epoch(epoch);
        let kind_params = central.handle().params();
        let mut aux = MirrorConfig::with_params(kind_params).build_mirror(site);
        // Mirror rule/function config follows the central's current view.
        aux.set_rules(central.handle().with(|a| a.rules().clone()));
        let replacement = MirrorSite::start_inner(
            MirrorHandle::new(aux),
            self.clock.clone(),
            &self.data,
            &self.ctrl_down,
            self.ctrl_up.publisher(),
            true,
            self.inbox_capacity,
        );
        // Subscriptions are live; now capture the recovery state and seed.
        // The capture must be *fresh* (no cached frame): rejoin replays no
        // floor, so a pre-subscribe capture would leave a silent gap
        // between its frontier and subscribe-time.
        let snapshot = central.state_sync().capture_now();
        let frontier = snapshot.as_of.clone();
        // By-value restore: the captured flight map moves into the seed
        // instead of being deep-cloned a second time.
        replacement.seed(snapshot.into_snapshot().into_state(), frontier);
        central.readmit_mirror(site);
        write(&self.sites).insert(site, replacement);
        Ok(())
    }

    /// Persist the central EDE state as the durable recovery snapshot
    /// (atomic replace). Bounds [`recover_site`](Self::recover_site)'s
    /// replay work to the log suffix after this point. Returns the number
    /// of flights captured; errors if the cluster has no durable store.
    pub fn persist_snapshot(&self) -> std::io::Result<usize> {
        read(&self.central).persist_snapshot()
    }

    /// Cold-start recovery of a mirror from the durable store — no live
    /// seed from the central EDE required (contrast
    /// [`rejoin_mirror`](Self::rejoin_mirror), which snapshots the running
    /// central): the replacement subscribes first (missing nothing), its
    /// state is rebuilt from the persisted snapshot plus a full replay of
    /// the retained log suffix, and it is readmitted into checkpoint
    /// rounds at a bumped membership epoch. Stale replays are absorbed by
    /// the EDE's idempotent per-flight guards, so over-replay converges to
    /// the live peers' state hash.
    ///
    /// Returns the number of log entries replayed into the recovered
    /// state. Errors with [`MembershipError::NoDurableStore`] if the
    /// cluster was started without a [`DurabilityConfig`], or
    /// [`MembershipError::Store`] if the store cannot be read.
    pub fn recover_site(&self, site: SiteId) -> Result<usize, MembershipError> {
        let dir = self
            .durability
            .as_ref()
            .map(|d| d.dir.clone())
            .ok_or(MembershipError::NoDurableStore)?;
        let epoch = self.membership.restore(site)?;
        let central = read(&self.central);
        central.set_membership_epoch(epoch);

        let kind_params = central.handle().params();
        let mut aux = MirrorConfig::with_params(kind_params).build_mirror(site);
        aux.set_rules(central.handle().with(|a| a.rules().clone()));
        let replacement = MirrorSite::start_inner(
            MirrorHandle::new(aux),
            self.clock.clone(),
            &self.data,
            &self.ctrl_down,
            self.ctrl_up.publisher(),
            true,
            self.inbox_capacity,
        );
        // Subscriptions are live; rebuild state from disk and seed it.
        // Anything published between here and the seed install is buffered
        // by the awaiting-seed main thread and replayed on top.
        //
        // With a live journal the recovery read MUST go through it: its
        // lock-protected EventLog serves the replay, so concurrent
        // publishes keep journaling safely. `mirror_store::recover` —
        // which opens a second EventLog on the directory and runs
        // *destructive* crash repair, corrupting a log that is still being
        // appended to — is reserved for the no-live-writer case (e.g. the
        // journaled central was stopped, or replaced by promotion).
        let recovered = match central.journal() {
            Some(j) => j.recover()?,
            None => mirror_store::recover(&dir)?,
        };
        replacement.seed(recovered.state, recovered.frontier);
        central.readmit_mirror(site);
        write(&self.sites).insert(site, replacement);
        Ok(recovered.replayed)
    }

    /// Gracefully stop the central site (ops hook, e.g. for planned node
    /// maintenance): its threads flush their coalescing buffers and the
    /// journal (if any) drains cleanly before they exit. The stream stalls
    /// until [`promote_mirror`](Self::promote_mirror) installs a new
    /// coordinator — or, with failover armed,
    /// [`poll_failover`](Self::poll_failover) installs one automatically.
    pub fn stop_central(&self) {
        write(&self.central).stop();
    }

    /// Simulate the central *process dying* (test/chaos hook), as opposed
    /// to the graceful [`stop_central`](Self::stop_central): threads
    /// abandon queued work, coalescing buffers are lost, and the journal —
    /// if any — is left un-flushed and un-fsynced, possibly with a torn
    /// final record (exercising the durable store's crash repair on
    /// takeover). See [`CentralSite::crash`].
    pub fn crash_central(&self) {
        write(&self.central).crash();
    }

    /// The leadership term of the coordinator currently in force (0 for
    /// the original central; each promotion bumps it).
    pub fn leader_term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// The admission gate takeovers close while the coordinator swaps.
    /// Wire it into a gateway via
    /// [`GatewayConfig::gate`](crate::requests::GatewayConfig::gate) so
    /// initial-state requests park (bounded) during failover instead of
    /// racing the swap.
    pub fn request_gate(&self) -> Arc<RequestGate> {
        Arc::clone(&self.request_gate)
    }

    /// Check the coordinator-liveness detector and, if the control
    /// downlink has been silent past the policy threshold, promote the
    /// lowest live mirror at a bumped leadership term — deterministic
    /// succession, no election: every observer ranks the same live set.
    ///
    /// Returns the transitions performed (empty without a
    /// [`FailoverPolicy`], or while the coordinator is healthy). Pump
    /// this from any thread holding the shared cluster, like
    /// [`poll_scale`](Self::poll_scale).
    pub fn poll_failover(&self) -> Vec<FailoverEvent> {
        let Some(policy) = self.failover else {
            return Vec::new();
        };
        let now = self.clock.now_us();
        let silent = self.cadence.silent_for(now);
        let threshold =
            u64::from(policy.suspect_rounds.max(1)) * self.cadence.expected_gap_us(policy.min_gap);
        if silent < threshold {
            return Vec::new();
        }
        let mut events = vec![FailoverEvent::CoordinatorDead {
            silent_for: Duration::from_micros(silent),
            term: self.term.load(Ordering::Acquire),
        }];
        // Deterministic succession: the lowest live site id takes over.
        let successor = self.membership.view().live_mirrors().first().copied();
        if let Some(site) = successor {
            if let Ok((_, replayed)) = self.promote_mirror_with(site, Duration::from_secs(2)) {
                events.push(FailoverEvent::Promoted {
                    site,
                    term: self.term.load(Ordering::Acquire),
                    epoch: self.membership.epoch(),
                    replayed,
                });
            }
        }
        // Whatever happened, restart the grace window: declaring death
        // again on the very next poll helps nobody.
        self.cadence.reset(self.clock.now_us());
        events
    }

    /// Promote a mirror to be the new central site — the deepest payoff of
    /// mirroring: every site holds the replicated state, so any of them
    /// can take over coordination. The promoted mirror's state seeds the
    /// new coordinator; the mirror itself is retired from the membership
    /// view (epoch bumped, id never reused) and the survivors keep their
    /// subscriptions (data and control flow from the new coordinator
    /// through the same channels).
    ///
    /// Returns the site ids of the live mirrors remaining under the new
    /// coordinator. Source traffic submitted after this call flows through
    /// the new central site.
    ///
    /// Uses a 2-second quiesce deadline; see
    /// [`promote_mirror_with`](Self::promote_mirror_with) for the deadline
    /// semantics and the zero-loss handoff details.
    pub fn promote_mirror(&self, site: SiteId) -> Result<Vec<SiteId>, MembershipError> {
        self.promote_mirror_with(site, Duration::from_secs(2)).map(|(survivors, _)| survivors)
    }

    /// [`promote_mirror`](Self::promote_mirror) with an explicit quiesce
    /// deadline, returning `(survivors, replayed)` where `replayed` is the
    /// number of journal entries applied beyond the successor's own
    /// frontier during zero-loss handoff (0 without durability).
    ///
    /// Takeover sequence:
    ///
    /// 1. the promotion lock serializes racing takeovers, and the cluster's
    ///    [`request_gate`](Self::request_gate) closes so initial-state
    ///    requests park (bounded) instead of racing the swap;
    /// 2. the candidate quiesces: its processed counter must hold still
    ///    for 3 consecutive 10 ms samples within `quiesce`. If the
    ///    deadline expires while the counter is still advancing, the
    ///    promotion aborts with [`MembershipError::QuiesceTimeout`] — the
    ///    mirror is left live and untouched, and the caller may retry;
    /// 3. the mirror stops, is snapshotted, and is retired (epoch bump);
    /// 4. **zero-loss handoff** (durability on): the successor adopts the
    ///    journal — reusing the live one after a graceful
    ///    [`stop_central`](Self::stop_central), or reopening the directory
    ///    (running torn-write crash repair) after
    ///    [`crash_central`](Self::crash_central) — replays the retained
    ///    log beyond its own frontier, and republishes the tail on the
    ///    data channel for the surviving mirrors (idempotent absorption);
    /// 5. the new coordinator starts at a **bumped leadership term**,
    ///    resuming the journal's send-index sequence, and every site
    ///    rejects control frames from the fenced predecessor's lower term.
    pub fn promote_mirror_with(
        &self,
        site: SiteId,
        quiesce: Duration,
    ) -> Result<(Vec<SiteId>, usize), MembershipError> {
        let _promotion = self.promotion.lock();
        match self.membership.view().state_of(site) {
            Some(SiteState::Live) => {}
            Some(SiteState::Suspect) => return Err(MembershipError::NotLive(site)),
            Some(SiteState::Retired) => return Err(MembershipError::Retired(site)),
            None => return Err(MembershipError::UnknownSite(site)),
        }

        // Park initial-state serving for the takeover window; reopen on
        // every exit path (including the error returns below).
        struct OpenOnDrop<'a>(&'a RequestGate);
        impl Drop for OpenOnDrop<'_> {
            fn drop(&mut self) {
                self.0.open();
            }
        }
        self.request_gate.close();
        let _reopen = OpenOnDrop(&self.request_gate);

        // Retire the promoted mirror FIRST, after quiescing: wait for its
        // processed counter to stop advancing (in-flight events draining
        // through the pumps), then stop() — the aux and main threads
        // process everything already delivered before exiting — then
        // snapshot. The seed thus includes every event the old central
        // broadcast, so the new coordinator is not behind the survivors.
        let mut last = self.mirror(site).processed();
        let mut stable = 0;
        let deadline = Instant::now() + quiesce;
        while stable < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            let now = self.mirror(site).processed();
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
        }
        if stable < 3 {
            // Deadline expired while the candidate was still applying:
            // promoting now would seed the new coordinator from a state
            // that is provably behind the stream. Abort before touching
            // membership — the mirror keeps running.
            return Err(MembershipError::QuiesceTimeout { site, processed: last });
        }
        let mut promoted =
            write(&self.sites).remove(&site).ok_or(MembershipError::UnknownSite(site))?;
        promoted.stop();
        let snapshot = promoted.snapshot();

        let epoch = self.membership.retire(site)?;
        let survivors = self.membership.view().live_mirrors();

        // New coordinator: seeded from the promoted mirror's state; its
        // subscriptions (ctrl-up) attach before any new traffic flows. It
        // coordinates the surviving live sites at the bumped epoch and
        // keeps the scale policy (if any) in force.
        let (params, rules, journal) = {
            let central = read(&self.central);
            let journal = match &self.durability {
                None => None,
                Some(dcfg) => match central.journal() {
                    // Graceful handoff: the journal is healthy — the
                    // successor simply takes over the live writer.
                    Some(j) if !j.is_crashed() => Some(Arc::clone(j)),
                    // The old central crashed (or somehow ran without a
                    // journal): its writer is gone and its log abandoned,
                    // so reopening the directory is safe — and runs the
                    // store's torn-write crash repair over whatever the
                    // dead process left behind.
                    _ => Some(Arc::new(Journal::open(dcfg)?)),
                },
            };
            (central.handle().params(), central.handle().with(|a| a.rules().clone()), journal)
        };

        // Zero-loss handoff: replay the retained log onto the successor's
        // snapshot. Entries at or below its frontier are absorbed
        // idempotently; entries beyond it are exactly the events the dead
        // central journaled but this mirror never received — counted, and
        // republished on the data channel so the surviving mirrors catch
        // up the same way.
        let mut frontier = snapshot.as_of.clone();
        let mut state = snapshot.into_state();
        let mut replayed = 0usize;
        if let Some(j) = &journal {
            let entries = j.replay_from(0)?;
            let data_pub = self.data.publisher();
            for (_, e) in entries {
                if !e.stamp.dominated_by(&frontier) {
                    replayed += 1;
                }
                state.apply(&e);
                frontier.merge(&e.stamp);
                data_pub.publish(SharedEvent::new(e));
            }
        }

        let mut aux = MirrorConfig::with_params(params).build_central(survivors.clone());
        aux.set_rules(rules);
        aux.set_membership_epoch(epoch);
        // Fencing: the successor coordinates at a strictly higher term.
        // Replies to the old coordinator's rounds, or CHKPT/COMMIT frames
        // from a resurrected old central, carry a lower term and are
        // rejected by the checkpointer and by every mirror.
        let new_term = self.term.fetch_add(1, Ordering::AcqRel) + 1;
        aux.set_leader_term(new_term);
        if let Some(policy) = self.failover {
            aux.set_heartbeat_after(policy.heartbeat_ticks);
        }
        if let Some(policy) = self.scale {
            aux.set_scale_policy(policy);
        }
        if let Some(j) = &journal {
            if let Some(last_idx) = j.last_idx() {
                // Journal indices must stay monotone across coordinators:
                // continue the sequence, don't restart at 1.
                aux.resume_send_idx(last_idx + 1);
            }
        }
        let replacement = CentralSite::start_inner(
            MirrorHandle::new(aux),
            self.clock.clone(),
            self.data.publisher(),
            self.ctrl_down.publisher(),
            &self.ctrl_up,
            true,
            journal.clone(),
            self.inbox_capacity,
        );
        replacement.seed(state, frontier);
        *write(&self.central) = replacement;

        // Re-point edge tiers that fronted the promoted mirror at the
        // successor central: swap the reseed provider (invalidating the
        // cached reseed — a stale provider would break the edge's
        // floor-before-capture coverage argument once new events flow)
        // and pump the successor's applied-updates stream. Late or gapped
        // subscribers reseed from the successor's state; the registry
        // records the new attachment.
        let repointed: Vec<Arc<EdgeServer>> = {
            let mut edges = self.edges.lock();
            let mut out = Vec::new();
            for (s, e) in edges.iter_mut() {
                if *s == site {
                    *s = mirror_core::CENTRAL_SITE;
                    out.push(Arc::clone(e));
                }
            }
            out
        };
        if !repointed.is_empty() {
            let central = read(&self.central);
            for edge in repointed {
                edge.set_provider(Box::new(crate::statesync::SyncStateProvider(
                    central.state_sync(),
                )));
                edge.pump_from(central.subscribe_updates());
            }
        }
        // Fresh grace window for the new coordinator's first heartbeat.
        self.cadence.reset(self.clock.now_us());
        Ok((survivors, replayed))
    }

    /// Stop every site and join all threads.
    pub fn shutdown(self) {
        for (_, e) in self.edges.lock().iter() {
            e.stop();
        }
        write(&self.central).stop();
        for (_, m) in write(&self.sites).iter_mut() {
            m.stop();
        }
        // Dropping `self` joins the failover watcher (see `Drop`).
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.watcher_stop.store(true, Ordering::Release);
        if let Some(w) = self.watcher.lock().take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::{FlightStatus, PositionFix};

    fn fix() -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 10.0 }
    }

    #[test]
    fn simple_mirroring_replicates_state_to_all_sites() {
        let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
        for seq in 1..=200u64 {
            cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
        }
        assert!(
            cluster.wait_all_processed(200, Duration::from_secs(5)),
            "all sites must process 200 events; got central={} mirrors={:?}",
            cluster.central().processed(),
            cluster.mirror_ids().iter().map(|&s| cluster.mirror(s).processed()).collect::<Vec<_>>()
        );
        let hashes = cluster.state_hashes();
        assert!(hashes.windows(2).all(|w| w[0] == w[1]), "hashes diverged: {hashes:?}");
        cluster.shutdown();
    }

    #[test]
    fn regular_clients_receive_updates() {
        let cluster = Cluster::start(ClusterConfig::default());
        let updates = cluster.subscribe_updates();
        for seq in 1..=50u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        let mut got = 0;
        while got < 50 {
            match updates.recv_timeout(Duration::from_secs(5)) {
                Some(_) => got += 1,
                None => break,
            }
        }
        assert_eq!(got, 50);
        assert!(cluster.central().counters().mean_delay_us() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn thin_client_recovers_from_mirror_snapshot() {
        let cluster = Cluster::start(ClusterConfig::default());
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, (seq % 5) as u32, fix()));
        }
        cluster.submit(Event::delta_status(1, 2, FlightStatus::Landed));
        assert!(cluster.wait_all_processed(101, Duration::from_secs(5)));
        let snap = cluster.snapshot(1).expect("site 1 is live");
        assert_eq!(snap.flight_count(), 5);
        let restored = snap.restore();
        assert_eq!(restored.state_hash(), cluster.state_hashes()[1]);
        cluster.shutdown();
    }

    #[test]
    fn checkpoints_prune_backup_queues_at_runtime() {
        let cluster = Cluster::start(ClusterConfig::default());
        cluster.central().handle().set_params(false, 1, 10); // checkpoint every 10
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));
        // Give the final checkpoint round a moment to commit.
        let committed = cluster.wait(Duration::from_secs(5), |c| {
            c.central().committed().map(|t| t.get(0) >= 90).unwrap_or(false)
        });
        assert!(committed, "checkpoint must commit most of the stream");
        let backup_len = cluster.central().handle().with(|a| a.backup_len());
        assert!(backup_len <= 20, "backup queue must be pruned, len={backup_len}");
        cluster.shutdown();
    }

    #[test]
    fn stats_snapshot_reflects_activity() {
        let cluster = Cluster::start(ClusterConfig::default());
        for seq in 1..=60u64 {
            cluster.submit(Event::faa_position(seq, 1, fix()));
        }
        assert!(cluster.wait_all_processed(60, Duration::from_secs(5)));
        let _ = cluster.snapshot(1).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.central.processed, 60);
        assert_eq!(stats.central.mirrored, 60);
        assert_eq!(stats.mirrors.len(), 1);
        assert_eq!(stats.mirror_ids, vec![1]);
        assert_eq!(stats.epoch, 0, "no membership change yet");
        assert_eq!(stats.mirrors[0].processed, 60);
        assert_eq!(stats.mirrors[0].snapshots, 1);
        assert!(stats.failed_mirrors.is_empty());
        assert!(stats.central.mean_update_delay_us > 0.0);
        assert_eq!(
            stats.central.shard_applied.iter().sum::<u64>(),
            60,
            "per-shard counters must account for every applied event"
        );
        assert!(stats.central.shard_imbalance >= 1.0);
        assert_eq!(stats.mirrors[0].shard_applied.iter().sum::<u64>(), 60);
        cluster.shutdown();
    }

    #[test]
    fn selective_mirroring_thins_mirror_traffic_live() {
        let cluster = Cluster::start(ClusterConfig {
            mirrors: 1,
            kind: MirrorFnKind::Selective { overwrite: 10 },
            ..Default::default()
        });
        for seq in 1..=100u64 {
            cluster.submit(Event::faa_position(seq, 7, fix()));
        }
        // Central processes all 100; the mirror only the overwrite
        // survivors (~10).
        assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= 100));
        assert!(cluster.wait(Duration::from_secs(5), |c| c.mirror(1).processed() >= 10));
        std::thread::sleep(Duration::from_millis(50));
        let mirror_seen = cluster.mirror(1).processed();
        assert!(mirror_seen <= 15, "mirror saw {mirror_seen} events, expected ~10");
        cluster.shutdown();
    }

    #[test]
    fn add_mirror_mid_stream_converges_and_retires() {
        let cluster = Cluster::start(ClusterConfig::default());
        for seq in 1..=80u64 {
            cluster.submit(Event::faa_position(seq, (seq % 4) as u32, fix()));
        }
        assert!(cluster.wait_all_processed(80, Duration::from_secs(5)));

        let site = cluster.add_mirror().expect("spawn mid-stream");
        assert_eq!(site, 2, "next never-used id");
        assert_eq!(cluster.epoch(), 1, "admission bumps the epoch");
        assert!(cluster.membership().is_live(site));

        for seq in 81..=140u64 {
            cluster.submit(Event::faa_position(seq, (seq % 4) as u32, fix()));
        }
        // The seeded site converges: same frontier, same state hash.
        let converged = cluster.wait(Duration::from_secs(5), |c| {
            let h = c.state_hashes();
            h.len() == 3 && h.windows(2).all(|w| w[0] == w[1])
        });
        assert!(converged, "new mirror must converge: {:?}", cluster.state_hashes());

        cluster.retire_mirror(site).expect("retire");
        assert_eq!(cluster.epoch(), 2, "retirement bumps the epoch");
        assert_eq!(cluster.mirror_ids(), vec![1]);
        assert!(
            matches!(cluster.snapshot(site), Err(MembershipError::Retired(2))),
            "retired ids answer with a typed error"
        );
        cluster.shutdown();
    }

    #[test]
    fn membership_errors_replace_index_panics() {
        let cluster = Cluster::start(ClusterConfig::default());
        assert_eq!(cluster.fail_mirror(9), Err(MembershipError::UnknownSite(9)));
        assert_eq!(cluster.rejoin_mirror(9), Err(MembershipError::UnknownSite(9)));
        assert_eq!(cluster.promote_mirror(9), Err(MembershipError::UnknownSite(9)));
        assert!(matches!(cluster.snapshot(9), Err(MembershipError::UnknownSite(9))));
        assert_eq!(
            cluster.recover_site(1),
            Err(MembershipError::NoDurableStore),
            "recovery without a store is a typed error, not a panic"
        );
        cluster.shutdown();
    }
}
