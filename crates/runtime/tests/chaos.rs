//! Chaos tests: the full cluster over faulty, resilient transport links.
//!
//! These are the integration-level counterpart of the unit tests in
//! `mirror_echo::resilient`: a real [`Cluster`] with a bridged mirror whose
//! downlink and uplink both run through a seeded [`FaultPlan`] (dropping,
//! duplicating, reordering frames and forcing disconnects), asserting the
//! paper-level guarantees survive —
//!
//! * every source event reaches the remote EDE **exactly once, in order**,
//! * transient link outages heal below the `suspect_after` failure
//!   detector's horizon (no spurious dead-mirror exclusion),
//! * a link whose retry budget is exhausted escalates to dead-mirror
//!   exclusion, after which central failover still works,
//! * the injected fault schedule is a pure function of its seed.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mirror_core::api::{MirrorConfig, MirrorHandle};
use mirror_core::event::{Event, PositionFix};
use mirror_echo::faults::{FaultPlan, FaultSummary, FaultyTransport};
use mirror_echo::resilient::{ResilientTransport, RetryPolicy};
use mirror_echo::transport::{inproc_rendezvous, InProcDialer, InProcListener, Polled};
use mirror_echo::wire::{encode_batch_from_encoded, encode_frame_shared, Frame};
use mirror_echo::Transport;
use mirror_runtime::bridge::{central_endpoint, mirror_endpoint};
use mirror_runtime::{Cluster, ClusterConfig, MirrorSite, RuntimeClock};

fn fix() -> PositionFix {
    PositionFix { lat: 47.6, lon: -122.3, alt_ft: 31_000.0, speed_kts: 440.0, heading_deg: 90.0 }
}

/// A connector that dials the in-process rendezvous and wraps every fresh
/// connection in a [`FaultyTransport`] sharing one fault schedule, so the
/// schedule continues across reconnects.
fn faulty_dialer(
    mut dialer: InProcDialer,
    state: Arc<Mutex<mirror_echo::faults::FaultState>>,
) -> impl FnMut() -> io::Result<Box<dyn Transport>> {
    move || {
        let raw = dialer.dial()?;
        Ok(Box::new(FaultyTransport::with_state(raw, Arc::clone(&state))) as Box<dyn Transport>)
    }
}

fn acceptor(mut listener: InProcListener) -> impl FnMut() -> io::Result<Box<dyn Transport>> {
    move || listener.accept(Duration::from_millis(10)).map(|t| Box::new(t) as Box<dyn Transport>)
}

/// The acceptance-criteria scenario: a cluster whose roster includes a
/// *bridged* mirror (site 2) reached only over chaos links. The fault plan
/// drops ≥10% of frames, duplicates frames and forces repeated
/// disconnects on both directions, yet every event must arrive exactly
/// once, in order, the remote EDE must converge to the central state, and
/// the failure detector must not excommunicate the mirror over transient
/// stalls the resilient layer heals.
#[test]
fn bridged_mirror_survives_chaos_links() {
    const N: u64 = 400;

    // Roster holds sites 1 and 2; site 2's in-process incarnation is
    // stopped immediately and replaced by a bridged remote below, so its
    // checkpoint replies genuinely cross the faulty uplink.
    let cluster =
        Cluster::start(ClusterConfig { mirrors: 2, suspect_after: 4, ..Default::default() });
    cluster.fail_mirror(2).unwrap();

    // Two unidirectional links, both resilient, both faulty on the
    // sending side. The bridge writer batches bursts into single frames,
    // so only tens of frames cross the downlink for 400 events — the
    // fault schedule is correspondingly denser than `chaos()` (which is
    // tuned for one frame per event) so drops, dups and disconnects all
    // still fire within the reduced frame count. The sparse uplink (one
    // CHKPT_REP per round) gets a denser disconnect schedule so it too
    // must reconnect.
    let (down_dialer, down_listener) = inproc_rendezvous("chaos.down");
    let (up_dialer, up_listener) = inproc_rendezvous("chaos.up");
    // Seed 98 is chosen so the deterministic per-index rolls fire a drop
    // (idx 2) and unconditional duplicates (idx 1, 4, 6, 8 — dup-positive,
    // drop- and reorder-negative, not a disconnect multiple) within the
    // first handful of frames: even the fastest runs, which batch the
    // whole stream into ~20 frames, exercise every fault kind.
    let down_faults =
        FaultPlan::new(98).drops(250).dups(250).reorders(100).disconnect_every(5).state();
    let up_faults = FaultPlan::new(9).drops(200).dups(150).disconnect_every(4).state();

    let down_tx = ResilientTransport::new(
        faulty_dialer(down_dialer, Arc::clone(&down_faults)),
        RetryPolicy::fast(200),
        "central.down",
    );
    let down_rx = ResilientTransport::new(
        acceptor(down_listener),
        RetryPolicy::fast(1_000_000),
        "mirror.down",
    );
    let up_tx = ResilientTransport::new(
        faulty_dialer(up_dialer, Arc::clone(&up_faults)),
        RetryPolicy::fast(200),
        "mirror.up",
    );
    let up_rx =
        ResilientTransport::new(acceptor(up_listener), RetryPolicy::fast(1_000_000), "central.up");
    let down_mon = down_tx.monitor();
    let stops =
        [down_tx.stop_handle(), down_rx.stop_handle(), up_tx.stop_handle(), up_rx.stop_handle()];
    cluster.attach_link_monitor(2, Arc::clone(&down_mon));

    let (data, ctrl_down, ctrl_up) = cluster.channels();
    let central_bridge =
        central_endpoint(data, ctrl_down, ctrl_up.publisher(), Box::new(down_tx), Box::new(up_rx));
    let ((bridged, order_sub), mirror_bridge) =
        mirror_endpoint(Box::new(down_rx), Box::new(up_tx), |data, ctrl_down, ctrl_up| {
            // Tap the bridged data channel alongside the site: the exact
            // delivery order as it came off the resilient link.
            let sub = data.subscribe();
            let site = MirrorSite::start(
                MirrorHandle::new(MirrorConfig::default().build_mirror(2)),
                RuntimeClock::new(),
                data,
                ctrl_down,
                ctrl_up.publisher(),
            );
            (site, sub)
        });

    // Collect the tapped delivery order on a side thread.
    let tap_stop = Arc::new(AtomicBool::new(false));
    let tap_stop2 = Arc::clone(&tap_stop);
    let tap = std::thread::spawn(move || {
        let mut seqs = Vec::new();
        loop {
            match order_sub.recv_status(Duration::from_millis(20)) {
                mirror_echo::channel::RecvStatus::Msg(e) => seqs.push(e.event().seq),
                mirror_echo::channel::RecvStatus::Timeout => {
                    if tap_stop2.load(Ordering::SeqCst) {
                        break;
                    }
                }
                mirror_echo::channel::RecvStatus::Disconnected => break,
            }
        }
        seqs
    });

    // Stream the source events with flow control: keep the bridged mirror
    // (and the checkpoint rounds its replies feed) within ~2 rounds of
    // the central so the failure detector measures the link's recovery,
    // not this test box's scheduling. Gating on the *committed* stamp
    // matters: commits need site 2's replies across the chaotic uplink,
    // so reply lag in rounds — what suspect_after actually counts — stays
    // bounded however slowly the link heals. (A real source is paced by
    // its sensors; a submit-as-fast-as-possible loop on a loaded CI
    // machine is not a link failure.)
    for seq in 1..=N {
        cluster.submit(Event::faa_position(seq, (seq % 20) as u32, fix()));
        if seq % 50 == 0 {
            let target = seq.saturating_sub(100);
            let catch_up = Instant::now() + Duration::from_secs(10);
            while Instant::now() < catch_up {
                let committed_ok =
                    cluster.central().committed().is_some_and(|s| s.get(0) >= target);
                if bridged.processed() >= target && committed_ok {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    // The remote EDE must absorb the full stream despite the chaos.
    let deadline = Instant::now() + Duration::from_secs(30);
    while bridged.processed() < N && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        bridged.processed(),
        N,
        "bridged mirror must process every event exactly once \
         (down={:?} up={:?})",
        down_faults.lock().unwrap().summary(),
        up_faults.lock().unwrap().summary(),
    );
    assert_eq!(bridged.state_hash(), cluster.central().state_hash(), "remote EDE must converge");

    // Exactly-once, in-order delivery as observed at the channel tap.
    tap_stop.store(true, Ordering::SeqCst);
    let seqs = tap.join().expect("tap thread");
    assert_eq!(seqs.len() as u64, N, "no duplicate or lost deliveries");
    assert!(seqs.iter().copied().eq(1..=N), "delivery order must match submission order");

    // The chaos actually happened: frames were dropped, duplicated, and
    // both links were forced down at least once. Batching also actually
    // happened: far fewer frames crossed the downlink than events were
    // submitted (each frame additionally carries checkpoint control
    // traffic and retransmissions, so the bound is loose).
    let down_sum = down_faults.lock().unwrap().summary();
    let up_sum = up_faults.lock().unwrap().summary();
    assert!(down_sum.sent < N / 2, "batching must coalesce events into frames: {down_sum:?}");
    assert!(down_sum.dropped > 0, "downlink drops: {down_sum:?}");
    assert!(down_sum.duplicated > 0, "downlink duplicates: {down_sum:?}");
    assert!(down_sum.disconnects >= 1, "downlink disconnects: {down_sum:?}");
    assert!(up_sum.disconnects >= 1, "uplink disconnects: {up_sum:?}");

    // ...the resilient layer healed it (visible in the status table's
    // link-health column), and the failure detector saw recovery, not
    // death: transient stalls stay below the suspect_after horizon.
    let health = cluster.link_health();
    let (site, down_health) = &health[0];
    assert_eq!(*site, 2);
    assert!(down_health.connects > 1, "downlink must have reconnected: {down_health:?}");
    assert!(down_health.retransmitted > 0, "downlink must have retransmitted: {down_health:?}");
    assert_eq!(down_health.delivered, 0, "one-way link: central side only sends");
    assert!(cluster.failed_mirrors().is_empty(), "no spurious exclusion under transient faults");

    // Orderly teardown: bridges first, then the resilient engines'
    // reconnection loops, then the sites.
    central_bridge.stop();
    mirror_bridge.stop();
    for s in &stops {
        s.store(true, Ordering::SeqCst);
    }
    central_bridge.join();
    mirror_bridge.join();
    let mut bridged = bridged;
    bridged.stop();
    cluster.shutdown();
}

/// Drive `n` data frames across one faulty resilient link,
/// single-threaded, and report what the schedule injected.
fn drive_chaos_link(plan: FaultPlan, n: u64) -> (Vec<u64>, FaultSummary, u64) {
    let (dialer, listener) = inproc_rendezvous("chaos.det");
    let state = plan.state();
    let mut tx = ResilientTransport::new(
        faulty_dialer(dialer, Arc::clone(&state)),
        RetryPolicy::fast(50),
        "det.tx",
    );
    let mut rx =
        ResilientTransport::new(acceptor(listener), RetryPolicy::fast(1_000_000), "det.rx");

    let mut got = Vec::new();
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while got.len() < n as usize && Instant::now() < deadline {
        if sent < n {
            sent += 1;
            tx.send(&Frame::Data(Arc::new(Event::faa_position(sent, 1, fix())))).unwrap();
        } else {
            tx.tick(Duration::from_millis(1));
        }
        while let Ok(Polled::Frame(Frame::Data(e))) = rx.recv_timeout(Duration::from_millis(1)) {
            got.push(e.seq);
        }
    }
    let summary = state.lock().unwrap().summary();
    let connects = tx.monitor().health().connects;
    (got, summary, connects)
}

/// Same seed ⇒ same injected schedule, byte for byte: the counters are a
/// pure function of (seed, frame index), never of timing.
#[test]
fn fault_injection_is_deterministic_per_seed() {
    let (got_a, sum_a, conn_a) = drive_chaos_link(FaultPlan::chaos(1234), 250);
    let (got_b, sum_b, conn_b) = drive_chaos_link(FaultPlan::chaos(1234), 250);
    assert!(got_a.iter().copied().eq(1..=250), "exactly once, in order");
    assert_eq!(got_a, got_b);
    assert_eq!(sum_a, sum_b, "fault schedule must replay exactly from its seed");
    assert_eq!(conn_a, conn_b);
    assert!(sum_a.dropped > 0 && sum_a.duplicated > 0 && sum_a.disconnects >= 1, "{sum_a:?}");

    let (_, sum_c, _) = drive_chaos_link(FaultPlan::chaos(4321), 250);
    assert_ne!(sum_a, sum_c, "a different seed must yield a different schedule");
}

/// Batched frames ride the resilient protocol as single units: one Seq
/// envelope covers the whole [`Frame::Batch`], so a retransmitted or
/// duplicated batch is accepted or discarded atomically. Drive batches
/// assembled the way the bridge writer does ([`encode_batch_from_encoded`]
/// over cached member encodings) across a seeded chaos link and require
/// every member event to arrive exactly once, in order.
#[test]
fn batched_frames_survive_chaos_exactly_once() {
    const BATCHES: u64 = 60;
    const PER_BATCH: u64 = 8;
    const N: u64 = BATCHES * PER_BATCH;

    let (dialer, listener) = inproc_rendezvous("chaos.batch");
    let state = FaultPlan::new(7).drops(200).dups(150).reorders(50).disconnect_every(10).state();
    let mut tx = ResilientTransport::new(
        faulty_dialer(dialer, Arc::clone(&state)),
        RetryPolicy::fast(50),
        "batch.tx",
    );
    let mut rx =
        ResilientTransport::new(acceptor(listener), RetryPolicy::fast(1_000_000), "batch.rx");

    let mut got = Vec::new();
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(20);
    while got.len() < N as usize && Instant::now() < deadline {
        if sent < BATCHES {
            let base = sent * PER_BATCH;
            sent += 1;
            let parts: Vec<_> = (1..=PER_BATCH)
                .map(|i| {
                    encode_frame_shared(&Frame::Data(Arc::new(Event::faa_position(
                        base + i,
                        1,
                        fix(),
                    ))))
                })
                .collect();
            tx.send_encoded(&encode_batch_from_encoded(&parts)).unwrap();
        } else {
            tx.tick(Duration::from_millis(1));
        }
        while let Ok(Polled::Frame(frame)) = rx.recv_timeout(Duration::from_millis(1)) {
            match frame {
                Frame::Batch(members) => {
                    for m in members {
                        if let Frame::Data(e) = m {
                            got.push(e.seq);
                        }
                    }
                }
                Frame::Data(e) => got.push(e.seq),
                _ => {}
            }
        }
    }

    assert_eq!(got.len() as u64, N, "every batched event exactly once");
    assert!(got.iter().copied().eq(1..=N), "batch members in submission order");
    let sum = state.lock().unwrap().summary();
    assert!(
        sum.dropped > 0 && sum.duplicated > 0 && sum.disconnects >= 1,
        "the chaos must have happened: {sum:?}"
    );
}

/// A link whose retry budget is exhausted reports [`LinkEvent::Dead`]; the
/// wired-up escalator excludes the mirror from checkpoint rounds at once
/// (instead of waiting out `suspect_after` silent rounds), and central
/// failover still works afterwards.
#[test]
fn dead_link_escalates_to_exclusion_and_failover_survives() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for seq in 1..=100u64 {
        cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(100, Duration::from_secs(10)));

    // Site 2's node goes dark: its process stops and its (hypothetical)
    // bridge link can no longer connect at all.
    cluster.fail_mirror(2).unwrap();
    let refused =
        || Err::<Box<dyn Transport>, _>(io::Error::new(io::ErrorKind::ConnectionRefused, "down"));
    let mut link = ResilientTransport::new(refused, RetryPolicy::fast(3), "dead.link")
        .on_event(cluster.central().link_escalator(2));
    let err = link.send(&Frame::Data(Arc::new(Event::faa_position(101, 1, fix())))).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    assert!(link.monitor().is_dead());
    assert_eq!(cluster.failed_mirrors(), vec![2], "dead link must escalate to exclusion");

    // Central failover under the same conditions: promote the surviving
    // mirror and keep serving traffic.
    cluster.stop_central();
    let survivors = cluster.promote_mirror(1).unwrap();
    assert!(!survivors.contains(&1));
    let updates = cluster.subscribe_updates();
    for seq in 101..=150u64 {
        cluster.submit(Event::faa_position(seq, (seq % 10) as u32, fix()));
    }
    let got = cluster.wait(Duration::from_secs(10), |c| c.central().processed() >= 50);
    assert!(got, "promoted central must process new traffic");
    let mut seen = 0;
    while updates.recv_timeout(Duration::from_millis(200)).is_some() {
        seen += 1;
    }
    assert!(seen >= 50, "regular clients keep receiving updates after failover, saw {seen}");
    cluster.shutdown();
}
