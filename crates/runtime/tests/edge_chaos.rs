//! Reconnect-resume correctness for the edge tier under the fault
//! harness: TCP subscribers whose reads are stalled by deterministic
//! seeded throttle schedules ([`FaultyTransport`]) and who drop their
//! sockets repeatedly mid-stream, resuming with `Frame::Resume`.
//!
//! Asserted invariants:
//!
//! * every client observes a **strictly increasing** `pub_seq` — no
//!   duplicates, no regressions, across any number of reconnects;
//! * healthy clients (no stalls, no disconnects, ample queue) observe a
//!   **contiguous** sequence after their initial reseed — zero gaps;
//! * chaos clients may see gaps, but only conflation-made ones: their
//!   final per-flight state is [`views_equivalent`] to the mirror's, so
//!   every loss is proven equivalent to overwriting by newer state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::event::{Event, FlightStatus, PositionFix};
use mirror_echo::faults::{FaultPlan, FaultyTransport};
use mirror_echo::{Frame, Polled, SubscriptionFilter, TcpTransport, Transport};
use mirror_ede::OperationalState;
use mirror_edge::tcp::EdgeTcp;
use mirror_edge::{views_equivalent, EdgeConfig};
use mirror_runtime::{Cluster, ClusterConfig};

const EVENTS: u64 = 3000;
const FLIGHTS: u32 = 8;
const DEADLINE: Duration = Duration::from_secs(60);

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: seq as f64 * 0.01,
        lon: 2.0,
        alt_ft: 31000.0,
        speed_kts: 450.0,
        heading_deg: 90.0,
    }
}

/// What one subscriber observed by the end of the run.
struct Observed {
    state: OperationalState,
    last: u64,
    gaps: u64,
    reconnects: u64,
}

/// Drive one subscriber until it has consumed up to `target` (set once the
/// feed is fully published). `stall` adds a seeded read-throttle schedule;
/// `disconnect_after` > 0 drops the socket after that many event frames on
/// each connection and resumes on a fresh one.
fn run_client(
    addr: std::net::SocketAddr,
    client: u64,
    stall: Option<(u32, u32)>,
    disconnect_after: u64,
    target: Arc<AtomicU64>,
) -> Observed {
    let deadline = Instant::now() + DEADLINE;
    let fault_state = stall.map(|(per_mille, ticks)| {
        FaultPlan::new(0xC0FFEE ^ client).stalls(per_mille, ticks).state()
    });
    let mut state = OperationalState::new();
    let mut last = 0u64;
    let mut gaps = 0u64;
    let mut reconnects = 0u64;
    let mut subscribed = false;
    'cycles: loop {
        assert!(Instant::now() < deadline, "client {client} timed out (last={last})");
        let inner = TcpTransport::connect(addr).expect("connect");
        let mut conn: Box<dyn Transport> = match &fault_state {
            Some(s) => Box::new(FaultyTransport::with_state(inner, Arc::clone(s))),
            None => Box::new(inner),
        };
        if subscribed {
            reconnects += 1;
            conn.send(&Frame::Resume { client, last_seq: last }).expect("send resume");
        } else {
            conn.send(&Frame::Subscribe { client, filter: SubscriptionFilter::All })
                .expect("send subscribe");
            subscribed = true;
        }
        let mut events_this_conn = 0u64;
        loop {
            assert!(Instant::now() < deadline, "client {client} timed out (last={last})");
            let done = {
                let t = target.load(Ordering::Acquire);
                t != 0 && last >= t
            };
            if done {
                break 'cycles;
            }
            match conn.recv_timeout(Duration::from_millis(1)) {
                Ok(Polled::Frame(Frame::Reseed { pub_seq, snapshot })) => {
                    // A reseed never rewinds: its frontier covers at least
                    // everything this client already consumed.
                    assert!(
                        pub_seq >= last,
                        "client {client}: reseed floor {pub_seq} below consumed {last}"
                    );
                    let snap = mirror_echo::wire::decode_snapshot(snapshot).expect("decode reseed");
                    state = snap.into_state();
                    last = pub_seq;
                }
                Ok(Polled::Frame(Frame::DeltaSnapshot { pub_seq, delta })) => {
                    // A delta reseed: the resume fell behind the retained
                    // window but the server still remembered the client's
                    // frontier as a delta base — only the flights that
                    // changed since travel, folded onto held state.
                    assert!(
                        pub_seq >= last,
                        "client {client}: delta reseed floor {pub_seq} below consumed {last}"
                    );
                    let d = mirror_echo::wire::decode_delta(delta).expect("decode delta reseed");
                    state.apply_delta(&d);
                    last = pub_seq;
                }
                Ok(Polled::Frame(Frame::EdgeEvent { pub_seq, event })) => {
                    // Strictly increasing: no duplicate, no regression —
                    // the resume replay starts exactly after last_seq.
                    assert!(
                        pub_seq > last,
                        "client {client}: pub_seq {pub_seq} after {last} (dup or regression)"
                    );
                    if pub_seq != last + 1 {
                        gaps += 1;
                    }
                    state.apply(&event);
                    last = pub_seq;
                    events_this_conn += 1;
                    if disconnect_after > 0 && events_this_conn >= disconnect_after {
                        // Seeded mid-stream drop; resume on the next cycle.
                        continue 'cycles;
                    }
                }
                Ok(Polled::Frame(f)) => panic!("client {client}: unexpected frame {f:?}"),
                Ok(Polled::Idle) => continue,
                Ok(Polled::Eof) | Err(_) => continue 'cycles,
            }
        }
    }
    Observed { state, last, gaps, reconnects }
}

#[test]
fn reconnect_resume_under_stalls_and_disconnects_is_gap_free_or_conflation_only() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    // Small retained window relative to the stream: resumes that fall
    // behind it exercise the cached-snapshot reseed path, not just replay.
    let edge = cluster
        .serve_edge(
            1,
            EdgeConfig {
                window: 1024,
                queue_cap: 8192,
                max_pending: 4096,
                workers: 2,
                ..Default::default()
            },
        )
        .expect("edge on mirror 1");
    let front = EdgeTcp::serve(Arc::clone(&edge), "127.0.0.1:0").expect("bind edge tcp");
    let addr = front.local_addr();

    let target = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for client in 0..6u64 {
        let target = Arc::clone(&target);
        let (stall, disconnect_after) = match client {
            // Healthy cohort: tight polling, stable socket.
            0 | 1 => (None, 0),
            // Read-stalled, frequently dropping chaos cohort.
            2 | 3 => (Some((150, 5)), 120),
            // Heavily stalled, rarely reading: maximal conflation, and
            // resumes that outlive the retained window.
            _ => (Some((300, 12)), 60),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("edge-sub-{client}"))
                .spawn(move || run_client(addr, client, stall, disconnect_after, target))
                .expect("spawn subscriber"),
        );
    }

    // Feed: per-flight monotone positions with a forward status advance
    // sprinkled in — the absolute-and-monotone-per-kind discipline the
    // conflation-equivalence theorem rests on.
    let mut status_idx = [0usize; FLIGHTS as usize];
    for seq in 1..=EVENTS {
        let flight = (seq % u64::from(FLIGHTS)) as u32;
        if seq % 100 == 0 {
            let idx = &mut status_idx[flight as usize];
            if *idx + 1 < FlightStatus::ALL.len() {
                *idx += 1;
                cluster.submit(Event::delta_status(seq, flight, FlightStatus::ALL[*idx]));
                continue;
            }
        }
        cluster.submit(Event::faa_position(seq, flight, fix(seq)));
    }
    assert!(cluster.wait_all_processed(EVENTS, Duration::from_secs(20)));

    // Everything applied; wait for the update pump to drain into the
    // edge (pub_seq stable), then release the clients' finish line.
    let mut stable = 0;
    let mut last_seen = edge.pub_seq();
    while stable < 5 {
        std::thread::sleep(Duration::from_millis(20));
        let now = edge.pub_seq();
        if now == last_seen && now > 0 {
            stable += 1;
        } else {
            stable = 0;
            last_seen = now;
        }
    }
    target.store(last_seen, Ordering::Release);

    let mirror_state = cluster.snapshot(1).expect("mirror snapshot").into_state();
    let mut total_reconnects = 0u64;
    for (client, h) in handles.into_iter().enumerate() {
        let obs = h.join().expect("subscriber thread");
        assert_eq!(obs.last, last_seen, "client {client} consumed to the frontier");
        if client < 2 {
            assert_eq!(
                obs.gaps, 0,
                "healthy client {client} must observe a contiguous stream (zero gaps)"
            );
            assert_eq!(obs.reconnects, 0);
        } else {
            total_reconnects += obs.reconnects;
        }
        // The resume/reseed/conflation pipeline converged: identical
        // per-flight state, every loss conflation-only.
        assert_eq!(
            obs.state.flights().len(),
            mirror_state.flights().len(),
            "client {client} flight set"
        );
        for (id, view) in mirror_state.flights().iter() {
            let got = obs
                .state
                .flight(*id)
                .unwrap_or_else(|| panic!("client {client}: flight {id} missing"));
            assert!(
                views_equivalent(view, got),
                "client {client} diverged on flight {id}:\n mirror: {view:?}\n client: {got:?}"
            );
        }
    }
    assert!(
        total_reconnects >= 4,
        "the chaos cohort must actually have disconnected and resumed (got {total_reconnects})"
    );
    let stats = edge.counters().snapshot();
    assert!(
        stats.connects_total >= 6 + total_reconnects,
        "every reconnect re-attached (replay or reseed): connects_total={} reconnects={}",
        stats.connects_total,
        total_reconnects
    );
    drop(front);
    cluster.shutdown();
}
