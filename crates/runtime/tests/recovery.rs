//! Durable-store integration tests: resync outcomes, rejoin after commit,
//! and cold-start recovery from snapshot + log replay.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use mirror_core::event::{Event, PositionFix};
use mirror_runtime::durability::{DurabilityConfig, ResyncOutcome, ResyncSource};
use mirror_runtime::{Cluster, ClusterConfig};
use mirror_store::FsyncPolicy;

fn fix() -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: 31000.0, speed_kts: 450.0, heading_deg: 270.0 }
}

fn feed(cluster: &Cluster, from: u64, to: u64) {
    for seq in from..=to {
        cluster.submit(Event::faa_position(seq, (seq % 8) as u32, fix()));
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mirror-rt-rec-{}-{}", std::process::id(), tag));
    let _ = fs::remove_dir_all(&d);
    d
}

fn durable_cfg(tag: &str, mirrors: u16) -> (ClusterConfig, PathBuf) {
    let dir = store_dir(tag);
    let cfg = ClusterConfig {
        mirrors,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            ..DurabilityConfig::new(&dir)
        }),
        ..Default::default()
    };
    (cfg, dir)
}

fn hashes_converged(c: &Cluster) -> bool {
    let h = c.state_hashes();
    h.windows(2).all(|w| w[0] == w[1])
}

/// Satellite: `resync_mirror` must not report success when the requested
/// index predates the retained suffix. Without a durable log, a pruned
/// prefix is a hard gap.
#[test]
fn resync_distinguishes_gap_from_memory_replay() {
    let cluster = Cluster::start(ClusterConfig::default());
    cluster.central().handle().set_params(false, 1, 10); // checkpoint every 10
    feed(&cluster, 1, 100);
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));
    assert!(cluster.wait(Duration::from_secs(5), |c| {
        c.central().committed().map(|t| t.get(0) >= 90).unwrap_or(false)
    }));

    let floor = cluster.central().handle().truncation_floor();
    assert!(floor > 1, "commits must have pruned the queue, floor={floor}");

    // Predating the suffix: the old code returned "0 replayed" here.
    match cluster.resync_mirror(1) {
        ResyncOutcome::Gap { first_retained } => {
            assert_eq!(first_retained, Some(floor));
        }
        other => panic!("expected Gap for pruned prefix, got {other:?}"),
    }

    // At the floor: a legitimate in-memory replay.
    match cluster.resync_mirror(floor) {
        ResyncOutcome::Replayed { source: ResyncSource::Memory, .. } => {}
        other => panic!("expected memory replay at the floor, got {other:?}"),
    }
    cluster.shutdown();
}

/// Tentpole: with a durable store, an index the backup queue has long
/// pruned is still served — from the log — and replaying it over live
/// mirrors is absorbed idempotently.
#[test]
fn resync_falls_back_to_durable_log_past_the_prune() {
    let (cfg, dir) = durable_cfg("logfallback", 1);
    let cluster = Cluster::start(cfg);
    cluster.central().handle().set_params(false, 1, 10);
    feed(&cluster, 1, 200);
    assert!(cluster.wait_all_processed(200, Duration::from_secs(5)));
    assert!(cluster.wait(Duration::from_secs(5), |c| {
        c.central().committed().map(|t| t.get(0) >= 190).unwrap_or(false)
    }));
    let floor = cluster.central().handle().truncation_floor();
    assert!(floor > 1);

    match cluster.resync_mirror(1) {
        ResyncOutcome::Replayed { events, source: ResyncSource::DurableLog } => {
            assert_eq!(events, 200, "the log retains the full stream");
        }
        other => panic!("expected durable-log replay, got {other:?}"),
    }

    // The replayed duplicates must not diverge any site's state.
    assert!(cluster.wait(Duration::from_secs(5), hashes_converged));
    assert!(cluster.central().journal().unwrap().last_error().is_none(), "journal must be healthy");
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Satellite: rejoin after the checkpoint protocol has committed (and
/// pruned) past the outage — the window where retransmission alone cannot
/// heal and the snapshot-seeded rejoin path is mandatory.
#[test]
fn rejoin_after_commit_converges_all_sites() {
    let cluster =
        Cluster::start(ClusterConfig { mirrors: 2, suspect_after: 3, ..Default::default() });
    cluster.central().handle().set_params(false, 1, 10);
    feed(&cluster, 1, 100);
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));

    cluster.fail_mirror(2).unwrap();
    feed(&cluster, 101, 220);
    // Drive commits well past the outage point so the backup queue prunes
    // the events mirror 2 missed.
    assert!(
        cluster.wait(Duration::from_secs(5), |c| {
            c.central().processed() >= 220
                && c.central().committed().map(|t| t.get(0) >= 200).unwrap_or(false)
        }),
        "commits must pass the outage: committed={:?} failed={:?}",
        cluster.central().committed(),
        cluster.failed_mirrors(),
    );
    let floor = cluster.central().handle().truncation_floor();
    assert!(floor > 100, "outage events must be pruned, floor={floor}");
    assert!(matches!(cluster.resync_mirror(101), ResyncOutcome::Gap { .. }));

    cluster.rejoin_mirror(2).unwrap();
    feed(&cluster, 221, 260);
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.mirror(2).processed() >= 40 && hashes_converged(c)
        }),
        "rejoined mirror must converge: hashes={:?}",
        cluster.state_hashes()
    );
    cluster.shutdown();
}

/// Acceptance: a mirror cold-started from the persisted snapshot + log
/// replay (no live central seed) reaches the same EDE state hash as live
/// peers, then keeps up with fresh traffic.
#[test]
fn recover_site_from_snapshot_and_log_matches_live_peers() {
    let (cfg, dir) = durable_cfg("coldstart", 2);
    let cluster = Cluster::start(cfg);
    cluster.central().handle().set_params(false, 1, 10);

    feed(&cluster, 1, 150);
    assert!(cluster.wait_all_processed(150, Duration::from_secs(5)));
    let captured = cluster.persist_snapshot().expect("persist snapshot");
    assert!(captured > 0, "snapshot must capture flights");

    // More traffic lands only in the log (snapshot is now stale).
    feed(&cluster, 151, 300);
    assert!(cluster.wait_all_processed(300, Duration::from_secs(5)));

    cluster.fail_mirror(1).unwrap();
    let replayed = cluster.recover_site(1).expect("recover from durable store");
    assert!(replayed > 0, "recovery must replay the log suffix");

    assert!(
        cluster.wait(Duration::from_secs(10), hashes_converged),
        "recovered mirror must match live peers: hashes={:?}",
        cluster.state_hashes()
    );

    // And it participates in live traffic afterwards.
    feed(&cluster, 301, 340);
    assert!(cluster.wait(Duration::from_secs(10), |c| {
        c.central().processed() >= 340 && hashes_converged(c)
    }));
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Recovery must be safe while traffic is still flowing: the store read
/// goes through the live journal's lock-protected log, never a second
/// (destructive) `EventLog::open` on the directory the journal is
/// appending to. Submissions are still in flight through the channels and
/// the journal writer queue when `recover_site` runs, so appends race the
/// recovery read — the journal must stay healthy and the log must still
/// serve the complete stream afterwards.
#[test]
fn recover_site_under_live_traffic_keeps_journal_intact() {
    let (cfg, dir) = durable_cfg("liverec", 2);
    let cluster = Cluster::start(cfg);
    cluster.central().handle().set_params(false, 1, 25);

    feed(&cluster, 1, 100);
    assert!(cluster.wait_all_processed(100, Duration::from_secs(5)));
    cluster.persist_snapshot().expect("persist snapshot");

    cluster.fail_mirror(1).unwrap();
    // Recover WITHOUT quiescing: these events are still draining through
    // the pumps and the journal writer while the store is read.
    feed(&cluster, 101, 400);
    let replayed = cluster.recover_site(1).expect("recover under live traffic");
    assert!(replayed > 0, "recovery must replay the log suffix");
    feed(&cluster, 401, 440);

    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.central().processed() >= 440
                && c.central().committed().map(|t| t.get(0) >= 400).unwrap_or(false)
                && hashes_converged(c)
        }),
        "recovered mirror must converge under live traffic: hashes={:?} committed={:?}",
        cluster.state_hashes(),
        cluster.central().committed(),
    );
    let central = cluster.central();
    assert!(central.journal().unwrap().last_error().is_none(), "journal must stay healthy");
    drop(central);
    // The log survived the concurrent recovery read: the full stream is
    // still replayable (no truncation hole from a racing repair).
    match cluster.resync_mirror(1) {
        ResyncOutcome::Replayed { events, source: ResyncSource::DurableLog } => {
            assert_eq!(events, 440, "log must still hold the complete stream");
        }
        other => panic!("expected durable-log replay of the full stream, got {other:?}"),
    }
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Recovery without durability configured is a typed error, not a panic.
#[test]
fn recover_site_without_store_is_unsupported() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    let err = cluster.recover_site(1).unwrap_err();
    assert!(
        matches!(err, mirror_core::membership::MembershipError::NoDurableStore),
        "expected NoDurableStore, got {err:?}"
    );
    cluster.shutdown();
}

/// Satellite: persisting the durable snapshot must not stall the event hot
/// path. The state is cloned under the EDE lock but *written* outside it,
/// so a slow or contended disk (injected here as a 750 ms save stall)
/// cannot pause mirroring: events submitted mid-save are fully processed
/// while the save is still on disk.
#[test]
fn slow_snapshot_save_does_not_stall_event_processing() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (cfg, dir) = durable_cfg("slowsave", 1);
    let cluster = Cluster::start(cfg);
    feed(&cluster, 1, 50);
    assert!(cluster.wait_all_processed(50, Duration::from_secs(5)));

    let journal = std::sync::Arc::clone(cluster.central().journal().unwrap());
    journal.set_snapshot_save_pad(Duration::from_millis(750));

    let save_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let captured = cluster.persist_snapshot().expect("slow persist");
            save_done.store(true, Ordering::SeqCst);
            assert!(captured > 0, "snapshot must capture the fed flights");
        });
        // Let the persist thread clone the state and enter the padded
        // save, then drive traffic straight through its stall window.
        std::thread::sleep(Duration::from_millis(100));
        feed(&cluster, 51, 90);
        assert!(
            cluster.wait_all_processed(90, Duration::from_secs(5)),
            "events must keep flowing during a slow snapshot save"
        );
        assert!(
            !save_done.load(Ordering::SeqCst),
            "processing finished while the save was still writing — the hot \
             path did not wait on the disk"
        );
    });
    assert!(journal.last_error().is_none());
    cluster.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
