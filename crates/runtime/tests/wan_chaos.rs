//! WAN mirror chaos: bounded-staleness reads and delta catch-up across a
//! partition of the shaped wide-area link.
//!
//! The scenario the WAN tier exists for: a geo-replica streams the
//! central's applied updates through a lossy, delayed link; the link is
//! severed mid-storm; the replica's reads must start **refusing** once the
//! outage outlives the staleness bound (never silently serving stale
//! flights); and after the link heals, one [`WanMirror::resync`] through
//! the central's unified `StateSync` provider closes the divergence with a
//! **delta** — only the flights touched during the outage travel — and
//! converges the replica to the central's exact state hash.
//!
//! All link randomness is seeded, so the run reproduces from its seed.

use std::time::{Duration, Instant};

use mirror_core::event::{Event, PositionFix};
use mirror_echo::LinkProfile;
use mirror_runtime::{Cluster, ClusterConfig, WanMirror, WanMirrorConfig, WanReadError};

const FLIGHTS: u32 = 64;
const STALENESS_BOUND: Duration = Duration::from_millis(300);
const DEADLINE: Duration = Duration::from_secs(30);

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: seq as f64 * 0.01,
        lon: -70.0,
        alt_ft: 33_000.0,
        speed_kts: 470.0,
        heading_deg: 180.0,
    }
}

/// Wait until the replica's pump has drained: `applied` stable across a
/// few polls longer than the link's worst-case delay.
fn wait_pump_drained(wan: &WanMirror, deadline: Instant) {
    let mut last = wan.applied();
    let mut stable = 0;
    while stable < 5 {
        assert!(Instant::now() < deadline, "pump never drained (applied={last})");
        std::thread::sleep(Duration::from_millis(20));
        let now = wan.applied();
        if now == last {
            stable += 1;
        } else {
            stable = 0;
            last = now;
        }
    }
}

#[test]
fn partition_heal_resync_is_delta_and_bounded_staleness_holds() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    let deadline = Instant::now() + DEADLINE;

    // A fast-but-lossy link so the healthy phase streams with real loss
    // and jitter without slowing the test down.
    let wan = WanMirror::connect(
        &cluster.central(),
        WanMirrorConfig {
            link: LinkProfile::new(5, 2, 20),
            seed: 0xC1A0,
            max_staleness: STALENESS_BOUND,
        },
    );

    // Phase A — healthy streaming: a storm across every flight.
    let mut seq = 0u64;
    for _ in 0..30 {
        for f in 0..FLIGHTS {
            seq += 1;
            cluster.submit(Event::faa_position(seq, f, fix(seq)));
        }
    }
    assert!(cluster.wait_all_processed(seq, Duration::from_secs(10)));
    wait_pump_drained(&wan, deadline);
    assert!(wan.applied() > 0, "the pump must have streamed events");

    // Healthy reads serve, and never error.
    let view = wan.read(0).expect("healthy read serves");
    assert!(view.is_some(), "flight 0 must be present on the replica");

    // The shaped link lost frames, so close the healthy-phase divergence
    // once: this also plants a fresh delta base for the partition test.
    let first = wan.resync();
    assert_eq!(
        wan.state_hash(),
        cluster.state_hashes()[0],
        "post-resync replica must match the central exactly"
    );
    assert!(first.wire_bytes > 0);

    // Phase B — partition mid-storm: sever the link, then touch a small
    // subset of flights (the divergence the outage accumulates).
    wan.partition();
    assert!(wan.is_partitioned());
    let touched = u64::from(FLIGHTS) / 16; // ~6% of the flight population
    for f in 0..touched as u32 {
        seq += 1;
        cluster.submit(Event::faa_position(seq, f, fix(seq)));
    }
    assert!(cluster.wait_all_processed(seq, Duration::from_secs(10)));

    // Inside the bound the replica still serves (stale but covered)…
    assert!(wan.read(0).is_ok(), "reads inside the staleness bound must serve");

    // …and once the outage outlives the bound, reads refuse instead of
    // lying. Poll rather than sleep-once so the assertion is sharp.
    loop {
        assert!(Instant::now() < deadline, "staleness bound never tripped");
        match wan.read(0) {
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            Err(WanReadError::StaleBeyondBound { stale_for, bound }) => {
                assert_eq!(bound, STALENESS_BOUND);
                assert!(stale_for > bound, "refusal only after the bound: {stale_for:?}");
                break;
            }
        }
    }
    assert!(
        wan.stale_for().expect("partition started the stale clock") > STALENESS_BOUND,
        "stale clock agrees with the read refusal"
    );

    // Phase C — heal the link, then close the hole. Healing alone must NOT
    // restore reads: the outage left a coverage hole only a resync fills.
    wan.heal();
    assert!(!wan.is_partitioned());
    assert!(
        wan.read(0).is_err(),
        "heal without resync must keep refusing (the lost window is still a hole)"
    );

    let resync = wan.resync();
    assert!(resync.delta, "small divergence against a remembered base must travel as a delta");
    assert!(
        resync.flights_moved >= touched as usize && resync.flights_moved < FLIGHTS as usize / 2,
        "the delta moves the touched subset, not the fleet: moved {} of {} (touched {})",
        resync.flights_moved,
        FLIGHTS,
        touched
    );
    assert_eq!(
        wan.state_hash(),
        cluster.state_hashes()[0],
        "delta resync must converge the replica to the central exactly"
    );
    assert_eq!(wan.flight_count(), FLIGHTS as usize);

    // Coverage restored: reads serve again.
    assert!(wan.read(0).expect("post-resync read serves").is_some());
    assert!(wan.stale_for().is_none(), "resync clears the stale clock");

    // The intra-cluster staleness gauge: with the feed quiesced and all
    // sites drained, the LAN mirror reports no event lag.
    let stats = cluster.stats();
    assert_eq!(stats.central.staleness_events, 0, "central row is 0 by definition");
    for m in &stats.mirrors {
        assert_eq!(m.staleness_events, 0, "drained mirror must show no staleness");
    }

    cluster.shutdown();
}
