//! Partition-migration chaos: slots move between mirror groups while a
//! submission storm is in flight.
//!
//! The integration-level counterpart of the unit tests in
//! `mirror_runtime::partition`: a [`PartitionedCluster`] under continuous
//! load from a submitter thread while the main thread migrates slots back
//! and forth between groups, asserting the tentpole guarantees —
//!
//! * **zero committed-event loss**: after the storm, the union state hash
//!   across group centrals equals a serial reference applying the same
//!   stream on one site (an event lost at a migration boundary, applied
//!   twice, or applied out of per-flight order would break the hash);
//! * **epoch monotonicity**: every migration strictly advances the
//!   partition-map epoch, and every group coordinator converges on the
//!   final epoch (from where it rides checkpoint COMMITs to mirrors);
//! * **memory handoff**: migrated flights vanish from the source group
//!   and appear at the target — no residue, no gaps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mirror_core::event::{Event, PositionFix};
use mirror_core::{FlightId, PartitionMap, PARTITION_SLOTS};
use mirror_ede::OperationalState;
use mirror_runtime::{ClusterConfig, PartitionedCluster, PartitionedConfig};

fn fix(seed: u32) -> PositionFix {
    PositionFix {
        lat: (seed % 90) as f64,
        lon: -((seed % 180) as f64),
        alt_ft: 30_000.0 + (seed % 5_000) as f64,
        speed_kts: 400.0 + (seed % 100) as f64,
        heading_deg: (seed % 360) as f64,
    }
}

#[test]
fn slots_migrate_mid_storm_without_losing_committed_events() {
    const FLIGHTS: u32 = 96;
    const EVENTS: u64 = 4_000;

    let pc = Arc::new(PartitionedCluster::start(PartitionedConfig {
        groups: 2,
        group: ClusterConfig { mirrors: 1, ..ClusterConfig::default() },
    }));

    // Submitter: one thread drives the whole storm and maintains the
    // serial reference in submission order — the single global order makes
    // the per-flight subsequences of reference and cluster identical.
    let reference = Arc::new(Mutex::new(OperationalState::new()));
    let done = Arc::new(AtomicBool::new(false));
    let submitter = {
        let pc = Arc::clone(&pc);
        let reference = Arc::clone(&reference);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for seq in 0..EVENTS {
                let flight = (seq % FLIGHTS as u64) as FlightId;
                let ev = Event::faa_position(seq, flight, fix(seq as u32));
                reference.lock().unwrap().apply(&ev);
                pc.submit(ev);
                if seq % 512 == 0 {
                    // Brief yields keep migrations interleaved with the
                    // storm instead of racing past it on one core.
                    std::thread::yield_now();
                }
            }
            done.store(true, Ordering::Release);
        })
    };

    // Chaos: while the storm runs, bounce slots between the groups. Every
    // flight of a moved slot migrates mid-traffic; some slots move twice.
    let mut epochs = vec![pc.epoch()];
    let moves: Vec<(usize, u16)> = vec![(3, 1), (8, 0), (13, 1), (3, 0), (21, 0), (40, 1), (8, 1)];
    for (slot, to) in moves {
        assert!(slot < PARTITION_SLOTS);
        let report = pc
            .migrate_slot(slot, to, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("migrate slot {slot} -> {to}: {e}"));
        if report.from != report.to {
            assert!(
                report.epoch > *epochs.last().unwrap(),
                "migration must strictly advance the map epoch"
            );
            epochs.push(report.epoch);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    submitter.join().expect("submitter");
    assert!(done.load(Ordering::Acquire));

    // Everything routed must drain everywhere.
    assert!(pc.wait_quiesced(Duration::from_secs(60)), "groups must drain after the storm");

    // Zero loss, zero duplication, per-flight order preserved.
    let reference = reference.lock().unwrap();
    assert_eq!(
        pc.union_state_hash(),
        reference.state_hash(),
        "union of partitioned state must equal the serial reference"
    );
    assert_eq!(pc.total_flights(), FLIGHTS as usize, "no flight lost or duplicated");

    // Epochs observed were strictly increasing; coordinators converged on
    // the final map for COMMIT carriage.
    assert!(epochs.windows(2).all(|w| w[0] < w[1]));
    let final_epoch = *epochs.last().unwrap();
    assert_eq!(pc.epoch(), final_epoch);
    for g in 0..pc.groups() {
        assert_eq!(
            pc.group(g as u16).central().partition_epoch(),
            final_epoch,
            "group {g} coordinator must adopt the final map"
        );
    }

    // Memory handoff: each flight lives exactly at its owning group's
    // central and nowhere else.
    let map = pc.map();
    for flight in 0..FLIGHTS as FlightId {
        let owner = map.group_of(flight);
        for g in 0..pc.groups() as u16 {
            let present = pc
                .group(g)
                .snapshot(mirror_core::CENTRAL_SITE)
                .expect("central snapshot")
                .flight(flight)
                .is_some();
            assert_eq!(
                present,
                g == owner,
                "flight {flight} presence at group {g} (owner {owner})"
            );
        }
    }
    match Arc::try_unwrap(pc) {
        Ok(pc) => pc.shutdown(),
        Err(_) => panic!("cluster still shared"),
    }
}

#[test]
fn migration_redirects_keyed_requests() {
    use mirror_runtime::{GatewayConfig, RequestError};

    let pc =
        PartitionedCluster::start(PartitionedConfig { groups: 2, group: ClusterConfig::default() });
    let map = pc.map();
    let flight: FlightId = (0..).find(|&f| map.group_of(f) == 0).unwrap();
    let slot = PartitionMap::slot_of(flight);
    for seq in 0..20u64 {
        pc.submit(Event::faa_position(seq, flight, fix(seq as u32)));
    }
    assert!(pc.wait_quiesced(Duration::from_secs(20)));

    let gw0 = pc.serve_group_requests(0, GatewayConfig::default());
    let gw1 = pc.serve_group_requests(1, GatewayConfig::default());
    let (c0, c1) = (gw0.client(), gw1.client());

    // Before the move: group 0 serves the flight, group 1 refuses with
    // the owner's id — the signal the ois GroupRouter re-routes on.
    assert!(c0.fetch_flight(flight, Duration::from_secs(5)).is_ok());
    assert!(matches!(
        c1.fetch_flight(flight, Duration::from_secs(5)),
        Err(RequestError::WrongPartition { owner_group: 0 })
    ));

    pc.migrate_slot(slot, 1, Duration::from_secs(30)).expect("migrate");

    // After: the verdicts flip, through the shared table, no re-spawn.
    assert!(matches!(
        c0.fetch_flight(flight, Duration::from_secs(5)),
        Err(RequestError::WrongPartition { owner_group: 1 })
    ));
    let served = c1.fetch_flight(flight, Duration::from_secs(5)).expect("target serves");
    assert!(served.flight_count() >= 1);

    drop((c0, c1));
    gw0.stop();
    gw1.stop();
    pc.shutdown();
}
