//! Automatic central-site failover under chaos: the acceptance scenario
//! for leadership terms, cadence-based failure detection, fenced takeover
//! and zero-loss journal handoff.
//!
//! The tentpole test kills the central *mid-storm* with durability on —
//! threads abandoned, journal unflushed, final record possibly torn — and
//! requires that
//!
//! * the liveness detector declares the coordinator dead from control
//!   silence alone and the **lowest live mirror self-promotes at a bumped
//!   leadership term** (deterministic succession, no election),
//! * **no committed event is lost**: the successor's frontier dominates
//!   the last committed checkpoint of the dead coordinator,
//! * frames from the fenced old coordinator (stale term) are **rejected**
//!   by the surviving mirrors.
//!
//! Satellites covered here: the typed `QuiesceTimeout` abort, promotion
//! edge cases (suspect / retired / unknown / racing double promotion),
//! takeover parking of initial-state requests, and promotion while a
//! checkpoint round is pending.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mirror_core::control::ControlMsg;
use mirror_core::event::{Event, PositionFix};
use mirror_core::membership::MembershipError;
use mirror_core::timestamp::VectorTimestamp;
use mirror_runtime::durability::DurabilityConfig;
use mirror_runtime::{
    Cluster, ClusterConfig, FailoverEvent, FailoverPolicy, GatewayConfig, RequestError,
};
use mirror_store::FsyncPolicy;

fn fix() -> PositionFix {
    PositionFix { lat: 40.6, lon: -73.8, alt_ft: 28_000.0, speed_kts: 455.0, heading_deg: 75.0 }
}

fn store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mirror-rt-fo-{}-{}", std::process::id(), tag));
    let _ = fs::remove_dir_all(&d);
    d
}

fn policy() -> FailoverPolicy {
    FailoverPolicy { suspect_rounds: 3, heartbeat_ticks: 2, min_gap: Duration::from_millis(50) }
}

/// Poll `poll_failover` until it reports a promotion (collecting every
/// event on the way) or the deadline expires.
fn poll_until_promoted(cluster: &Cluster, timeout: Duration) -> Vec<FailoverEvent> {
    let deadline = Instant::now() + timeout;
    let mut events = Vec::new();
    while Instant::now() < deadline {
        events.extend(cluster.poll_failover());
        if events.iter().any(|e| matches!(e, FailoverEvent::Promoted { .. })) {
            return events;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    events
}

/// The acceptance-criteria scenario: central crashes mid-storm with
/// durability on; a mirror self-promotes at a bumped term; no committed
/// event is lost; the fenced old coordinator's stale-term frames are
/// rejected by the survivors.
#[test]
fn crash_mid_storm_promotes_successor_with_zero_committed_loss() {
    let dir = store_dir("chaos");
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 3,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            ..DurabilityConfig::new(&dir)
        }),
        failover: Some(policy()),
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 10); // frequent rounds
    assert_eq!(cluster.leader_term(), 0);

    // The storm: a feeder thread pumping position updates flat out.
    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicU64::new(0));
    let cluster = Arc::new(cluster);
    let feeder = {
        let (cluster, stop, seq) = (Arc::clone(&cluster), Arc::clone(&stop), Arc::clone(&seq));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let s = seq.fetch_add(1, Ordering::Relaxed) + 1;
                cluster.submit(Event::faa_position(s, (s % 8) as u32, fix()));
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    // Let the protocol commit real work before the kill.
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.central()
                .committed()
                .map(|t| t.components().iter().sum::<u64>() >= 100)
                .unwrap_or(false)
        }),
        "storm must commit checkpoints before the crash"
    );
    let committed_before = cluster.central().committed().expect("commits observed before crash");

    // Kill it mid-storm: threads abandoned, journal unflushed + torn.
    cluster.crash_central();
    stop.store(true, Ordering::Relaxed);
    feeder.join().unwrap();

    // Silence on the control downlink must now be detected and the lowest
    // live mirror promoted — no operator in the loop.
    let events = poll_until_promoted(&cluster, Duration::from_secs(15));
    assert!(
        events.iter().any(|e| matches!(e, FailoverEvent::CoordinatorDead { term: 0, .. })),
        "death of the term-0 coordinator must be declared, got {events:?}"
    );
    let (site, term, replayed) = events
        .iter()
        .find_map(|e| match e {
            FailoverEvent::Promoted { site, term, replayed, .. } => Some((*site, *term, *replayed)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no promotion in {events:?}"));
    assert_eq!(site, 1, "deterministic succession: lowest live site takes over");
    assert_eq!(term, 1, "takeover must bump the leadership term");
    assert_eq!(cluster.leader_term(), 1);
    println!("journal entries replayed beyond successor frontier: {replayed}");

    // Zero committed-event loss: everything the dead coordinator had
    // committed is inside the successor's frontier (replicated state plus
    // the crash-repaired journal tail).
    let successor_frontier = cluster.snapshot(0).unwrap().as_of;
    assert!(
        committed_before.dominated_by(&successor_frontier),
        "committed {committed_before:?} must be ≤ successor frontier {successor_frontier:?}"
    );

    // Fencing: wait for a survivor to learn the new term from the new
    // coordinator's rounds, then inject CHKPT/COMMIT frames as the
    // resurrected old central (term 0) — both must be rejected.
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.mirror(2).handle().with(|a| a.leader_term()) >= 1
        }),
        "survivor must learn the bumped term from the new coordinator"
    );
    let (_, ctrl_down, _) = cluster.channels();
    let stale = ctrl_down.publisher();
    stale.publish(ControlMsg::Chkpt {
        round: 9_999,
        stamp: VectorTimestamp::empty(),
        epoch: cluster.epoch(),
        term: 0,
    });
    stale.publish(ControlMsg::Commit {
        round: 9_999,
        stamp: VectorTimestamp::empty(),
        epoch: cluster.epoch(),
        term: 0,
        adapt: None,
    });
    assert!(
        cluster.wait(Duration::from_secs(5), |c| {
            c.mirror(2).handle().with(|a| a.counters()).stale_term_rejects >= 2
        }),
        "stale-term frames from the fenced old coordinator must be rejected"
    );

    // Service continues under the new coordinator.
    let before = cluster.central().processed();
    for s in 1..=100u64 {
        cluster.submit(Event::faa_position(1_000_000 + s, (s % 8) as u32, fix()));
    }
    assert!(
        cluster.wait(Duration::from_secs(10), |c| c.central().processed() >= before + 100),
        "new coordinator must keep serving the stream"
    );

    Arc::try_unwrap(cluster).ok().expect("all clones dropped").shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Graceful-death detection: after `stop_central` the heartbeat stream
/// stops, the detector declares death from cadence silence, and the new
/// coordinator completes checkpoint rounds at the bumped term even though
/// the old one may have died with a round pending.
#[test]
fn silent_coordinator_is_detected_and_rounds_restart_under_new_term() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        failover: Some(policy()),
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 10);
    for s in 1..=120u64 {
        cluster.submit(Event::faa_position(s, (s % 6) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(120, Duration::from_secs(10)));

    // Healthy coordinator: heartbeats keep the cadence alive, so polling
    // must never declare death.
    std::thread::sleep(Duration::from_millis(300));
    assert!(cluster.poll_failover().is_empty(), "healthy coordinator must not be declared dead");

    // Stop mid-protocol (a round may be pending; the successor restarts
    // rounds under its own term rather than completing the orphan).
    cluster.stop_central();
    let events = poll_until_promoted(&cluster, Duration::from_secs(15));
    let promoted = events.iter().find_map(|e| match e {
        FailoverEvent::Promoted { site, term, .. } => Some((*site, *term)),
        _ => None,
    });
    assert_eq!(promoted, Some((1, 1)), "lowest live mirror at term 1, got {events:?}");

    // Checkpoint rounds run to commit under the new coordinator.
    for s in 121..=240u64 {
        cluster.submit(Event::faa_position(s, (s % 6) as u32, fix()));
    }
    assert!(
        cluster.wait(Duration::from_secs(10), |c| {
            c.central()
                .committed()
                .map(|t| t.components().iter().sum::<u64>() >= 100)
                .unwrap_or(false)
        }),
        "rounds must commit under the new term"
    );
    cluster.shutdown();
}

/// Satellite: a promotion whose quiesce window expires while the mirror
/// is still applying events aborts with the typed `QuiesceTimeout` — and
/// leaves the mirror live and the cluster fully operational.
#[test]
fn quiesce_timeout_aborts_promotion_and_leaves_mirror_live() {
    let cluster = Arc::new(Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() }));

    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let (cluster, stop) = (Arc::clone(&cluster), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut s = 0u64;
            while !stop.load(Ordering::Relaxed) {
                s += 1;
                cluster.submit(Event::faa_position(s, (s % 4) as u32, fix()));
                std::thread::sleep(Duration::from_micros(500));
            }
            s
        })
    };
    // Let the stream ramp so the candidate's processed counter is moving.
    assert!(cluster.wait(Duration::from_secs(5), |c| c.mirror(1).processed() >= 50));

    // A 120 ms window can never observe 3 stable 10 ms samples while the
    // feeder keeps the counter advancing.
    match cluster.promote_mirror_with(1, Duration::from_millis(120)) {
        Err(MembershipError::QuiesceTimeout { site: 1, processed }) => {
            assert!(processed >= 50, "reported frontier counter, got {processed}");
        }
        other => panic!("expected QuiesceTimeout, got {other:?}"),
    }

    // The failed promotion must leave the mirror untouched and live.
    let before = cluster.mirror(1).processed();
    assert!(
        cluster.wait(Duration::from_secs(5), |c| c.mirror(1).processed() > before),
        "mirror must still be applying the stream after the aborted promotion"
    );

    // Once the stream drains, the same promotion succeeds.
    stop.store(true, Ordering::Relaxed);
    let submitted = feeder.join().unwrap();
    assert!(cluster.wait_all_processed(submitted, Duration::from_secs(10)));
    let survivors = cluster.promote_mirror(1).expect("quiesced promotion succeeds");
    assert_eq!(survivors, vec![2]);
    Arc::try_unwrap(cluster).ok().expect("all clones dropped").shutdown();
}

/// Satellite: promotion edge cases — suspect, retired and unknown sites
/// are typed errors, and two racing promotions of the same site resolve
/// to exactly one winner (the loser sees the site already retired).
#[test]
fn promotion_edge_cases_and_racing_double_promotion() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 3, ..Default::default() });
    for s in 1..=60u64 {
        cluster.submit(Event::faa_position(s, (s % 5) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(60, Duration::from_secs(5)));

    // A suspect (failed) site cannot seed a coordinator.
    cluster.fail_mirror(3).unwrap();
    assert!(matches!(cluster.promote_mirror(3), Err(MembershipError::NotLive(3))));
    // Nor can a site that was never admitted.
    assert!(matches!(cluster.promote_mirror(99), Err(MembershipError::UnknownSite(99))));

    // Two threads race to promote the same mirror: the promotion lock
    // serializes them, exactly one wins, and the loser gets `Retired` —
    // not a second coordinator.
    let cluster = Arc::new(cluster);
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || cluster.promote_mirror(1))
        })
        .collect();
    let outcomes: Vec<_> = racers.into_iter().map(|t| t.join().unwrap()).collect();
    let wins = outcomes.iter().filter(|r| r.is_ok()).count();
    assert_eq!(wins, 1, "exactly one racer may win: {outcomes:?}");
    assert!(
        outcomes.iter().any(|r| matches!(r, Err(MembershipError::Retired(1)))),
        "the loser must see the site already retired: {outcomes:?}"
    );
    assert_eq!(cluster.leader_term(), 1, "one promotion, one term bump");

    // And the retired id stays unpromotable forever.
    assert!(matches!(cluster.promote_mirror(1), Err(MembershipError::Retired(1))));
    Arc::try_unwrap(cluster).ok().expect("all clones dropped").shutdown();
}

/// Satellite: gateways wired to the cluster's request gate park
/// initial-state requests while a takeover is in flight — a bounded wait,
/// then the typed `Unavailable` error instead of racing the swap.
#[test]
fn request_gate_parks_initial_state_requests_during_takeover() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    for s in 1..=40u64 {
        cluster.submit(Event::faa_position(s, (s % 4) as u32, fix()));
    }
    assert!(cluster.wait_all_processed(40, Duration::from_secs(5)));

    let gate = cluster.request_gate();
    let gw = cluster.mirror(2).serve_requests_with(GatewayConfig {
        gate: Some(Arc::clone(&gate)),
        gate_wait: Duration::from_millis(150),
        ..GatewayConfig::default()
    });
    let client = gw.client();

    // Open gate: requests flow.
    assert!(client.fetch(Duration::from_secs(5)).is_ok());

    // Closed gate (as during a takeover window): the request parks for
    // `gate_wait`, then fails typed — never a half-swapped snapshot.
    gate.close();
    match client.fetch(Duration::from_secs(5)) {
        Err(RequestError::Unavailable) => {}
        other => panic!("expected Unavailable behind a closed gate, got {other:?}"),
    }

    // A request issued while closed is served once the gate reopens in
    // time (parked, not dropped).
    gate.close();
    let rx = client.fire().unwrap();
    std::thread::sleep(Duration::from_millis(40));
    gate.open();
    match rx.recv_timeout(Duration::from_secs(5)) {
        Ok(Ok(_)) => {}
        other => panic!("parked request must be served after reopen, got {other:?}"),
    }

    // And a real promotion reopens the gate on completion, so service
    // continues against the survivor.
    cluster.stop_central();
    cluster.promote_mirror(1).unwrap();
    assert!(gate.is_open(), "promotion must reopen the admission gate");
    assert!(client.fetch(Duration::from_secs(5)).is_ok());
    gw.stop();
    cluster.shutdown();
}
