//! Ingest overload surfaces as **typed backpressure**, never as silent
//! spinning or unbounded queueing: with a tiny configured
//! [`ClusterConfig::inbox_capacity`], a producer that outruns the site's
//! aux thread sees [`SiteOverload`] from `try_submit`, while every event
//! that *was* accepted still applies.

use std::time::Duration;

use mirror_core::event::{Event, PositionFix};
use mirror_runtime::{Cluster, ClusterConfig};

fn fix() -> PositionFix {
    PositionFix { lat: 1.0, lon: 2.0, alt_ft: 31000.0, speed_kts: 440.0, heading_deg: 45.0 }
}

#[test]
fn saturation_surfaces_as_typed_backpressure_not_silent_spinning() {
    let capacity = 4usize;
    let cluster = Cluster::start(ClusterConfig { inbox_capacity: capacity, ..Default::default() });
    assert_eq!(cluster.central().inbox_capacity(), capacity);

    // A tight submit loop trivially outruns the per-event aux work
    // (mirror-fn evaluation, backup-queue push, ring hand-off), so the
    // pipeline must fill and the typed refusal must fire well inside the
    // attempt budget.
    let mut accepted = 0u64;
    let mut refusal = None;
    for seq in 1..=200_000u64 {
        match cluster.try_submit(Event::faa_position(seq, (seq % 8) as u32, fix())) {
            Ok(()) => accepted += 1,
            Err(e) => {
                refusal = Some(e);
                break;
            }
        }
    }
    let overload = refusal.expect("saturation must surface as a typed error");
    assert_eq!(overload.capacity, capacity, "refusal reports the configured capacity");
    assert!(
        overload.queued >= capacity,
        "refusal fires at the threshold: queued={} capacity={}",
        overload.queued,
        capacity
    );
    assert!(accepted >= capacity as u64, "everything below the threshold was accepted");

    // Backpressure, not loss: every accepted event drains and applies.
    assert!(
        cluster.wait(Duration::from_secs(10), |c| c.central().processed() == accepted),
        "accepted events must all apply: processed={} accepted={}",
        cluster.central().processed(),
        accepted
    );

    // The dispatch ring honoured the configured bound throughout.
    let ring = cluster.central().dispatch_ring_stats();
    assert!(
        ring.high_watermark <= capacity,
        "ring occupancy must never exceed the configured capacity: {} > {}",
        ring.high_watermark,
        capacity
    );
    assert!(ring.dequeued >= accepted, "the dispatcher drained the accepted stream");
    cluster.shutdown();
}

#[test]
fn default_capacity_absorbs_bursts_and_reports_ring_stats() {
    let cluster = Cluster::start(ClusterConfig::default());
    assert_eq!(
        cluster.central().inbox_capacity(),
        mirror_runtime::DEFAULT_MAIN_RING_CAPACITY,
        "unspecified config keeps the historical 8192-slot ring"
    );
    for seq in 1..=500u64 {
        cluster
            .try_submit(Event::faa_position(seq, (seq % 4) as u32, fix()))
            .expect("a 500-event burst is far below the default capacity");
    }
    assert!(cluster.wait_all_processed(500, Duration::from_secs(10)));
    let ring = cluster.central().dispatch_ring_stats();
    assert!(ring.enqueued >= 500, "every event crossed the dispatch ring");
    assert!(ring.high_watermark <= mirror_runtime::DEFAULT_MAIN_RING_CAPACITY);
    // Mirrors inherit the same configured capacity.
    assert_eq!(cluster.mirror(1).inbox_capacity(), mirror_runtime::DEFAULT_MAIN_RING_CAPACITY);
    cluster.shutdown();
}
