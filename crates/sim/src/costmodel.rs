//! The calibrated cost model.
//!
//! These constants stand in for the paper's testbed (300 MHz Pentium-III
//! servers, Solaris 5.5.1, 100 Mbps client Ethernet). They were calibrated
//! — see EXPERIMENTS.md — so that:
//!
//! * the *no-mirroring* baseline over the experiment event sequence lands
//!   in the paper's 4–20 s total-execution-time range across the 0–8 KB
//!   event-size sweep (Figure 4's axes);
//! * *simple mirroring to one site* costs 15–20 % over the baseline,
//!   growing with event size ("this increase is due to event resubmission,
//!   thread scheduling, queue management and execution of the control
//!   mechanism") — Figure 4;
//! * each *additional* mirror site adds < 10 % — Figure 5.
//!
//! Absolute values are not the reproduction target (our substrate is a
//! simulator, not their cluster); the *ratios* between these constants are
//! what carries the figures' shapes.

use crate::SimTime;

/// Per-operation CPU costs (µs) charged by the OIS site processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    // ---- main unit (EDE) ------------------------------------------------
    /// Business-logic processing of one event: fixed part.
    pub ede_base_us: SimTime,
    /// Business-logic processing: per payload byte (parsing/analysis).
    pub ede_per_byte_us: f64,
    /// Building a client initial-state snapshot: fixed part.
    pub snapshot_base_us: SimTime,
    /// Snapshot construction: per flight in the state.
    pub snapshot_per_flight_us: f64,
    /// Snapshot construction/transmission CPU per snapshot byte. Initial
    /// views carry each flight's current record, so snapshots (and request
    /// cost) grow with the experiment's event size — the effect behind
    /// Figure 6's crossover.
    pub snapshot_per_byte_us: f64,
    /// Fraction of an event's wire size that persists into the per-flight
    /// state record (the EDE stores parsed fields, not the raw padded
    /// event). Scales snapshot size with the experiment's event size
    /// without letting client links swamp every other effect.
    pub state_record_fraction: f64,

    // ---- auxiliary unit: receiving task ---------------------------------
    /// Timestamping + event conversion + ready-queue insert, per event.
    pub recv_base_us: SimTime,
    /// Receive-path per-byte handling (copy into queues).
    pub recv_per_byte_us: f64,
    /// Evaluating one semantic rule against one event.
    pub rule_eval_us: SimTime,

    // ---- auxiliary unit: sending task ------------------------------------
    /// Per wire event: resubmission, backup-queue insert, bookkeeping.
    pub send_base_us: SimTime,
    /// Send-path per-byte handling.
    pub send_per_byte_us: f64,
    /// Additional cost per *destination* per wire event (channel submit).
    pub per_dest_us: SimTime,
    /// Additional per-destination per-byte cost (buffer handoff).
    pub per_dest_per_byte_us: f64,

    // ---- control task -----------------------------------------------------
    /// Handling one control message (any site).
    pub ctrl_msg_us: SimTime,
    /// Coordinator-side cost per checkpoint round. In the paper's threaded
    /// implementation the control task synchronizes with the receiving and
    /// sending tasks over the shared queues, stalling the event pipeline
    /// for far longer than the pure message handling; this constant models
    /// that stall (calibrated so halving the checkpoint frequency under
    /// load recovers ≈10% of total time, as reported for Figure 7).
    pub chkpt_round_us: SimTime,
    /// Participant-side (mirror main+aux) stall per checkpoint round, same
    /// rationale as [`Self::chkpt_round_us`].
    pub chkpt_participant_us: SimTime,
    /// Scanning/pruning one backup-queue entry at commit.
    pub prune_per_event_us: f64,
    /// Queue-management cost charged per mirrored event per entry already
    /// in the backup queue ("this increase is due to event resubmission,
    /// thread scheduling, **queue management**…"). Negligible while
    /// checkpoints commit promptly (queue ≈ checkpoint interval), but when
    /// an overloaded mirror delays its checkpoint replies, the central
    /// backup queue grows and mirroring itself gets costlier — the
    /// load-coupling behind the delay blow-ups of Figures 8 and 9.
    pub queue_mgmt_per_entry_us: f64,

    // ---- client requests ---------------------------------------------------
    /// Fixed per-request servicing overhead (connection, dispatch).
    pub request_base_us: SimTime,
    /// Per-original-event cost of combining events into a coalesced mirror
    /// event ("combining events based on event values" is real work on the
    /// receive/send path; pure overwriting, which merely discards, avoids
    /// it — the trade the §4.3 adaptive profiles exercise).
    pub coalesce_fold_us: SimTime,
}

impl CostModel {
    /// The calibrated model used by all experiments.
    pub fn calibrated() -> Self {
        CostModel {
            ede_base_us: 380,
            ede_per_byte_us: 0.145,
            snapshot_base_us: 600,
            snapshot_per_flight_us: 4.0,
            snapshot_per_byte_us: 0.04,
            state_record_fraction: 0.25,
            recv_base_us: 20,
            recv_per_byte_us: 0.004,
            rule_eval_us: 2,
            send_base_us: 25,
            send_per_byte_us: 0.012,
            per_dest_us: 25,
            per_dest_per_byte_us: 0.002,
            ctrl_msg_us: 40,
            chkpt_round_us: 1_000,
            chkpt_participant_us: 1_200,
            prune_per_event_us: 1.5,
            queue_mgmt_per_entry_us: 0.005,
            request_base_us: 150,
            coalesce_fold_us: 45,
        }
    }

    /// EDE cost of processing one event of `bytes` total wire size.
    pub fn ede_cost(&self, bytes: usize) -> SimTime {
        self.ede_base_us + (self.ede_per_byte_us * bytes as f64) as SimTime
    }

    /// Receive-path cost of one incoming event under `rules` active rules.
    pub fn recv_cost(&self, bytes: usize, rules: usize) -> SimTime {
        self.recv_base_us
            + (self.recv_per_byte_us * bytes as f64) as SimTime
            + self.rule_eval_us * rules as SimTime
    }

    /// Send-path cost of putting one wire event of `bytes` onto `dests`
    /// outgoing channels.
    pub fn send_cost(&self, bytes: usize, dests: usize) -> SimTime {
        self.send_base_us
            + (self.send_per_byte_us * bytes as f64) as SimTime
            + dests as SimTime
                * (self.per_dest_us + (self.per_dest_per_byte_us * bytes as f64) as SimTime)
    }

    /// Cost of servicing one initial-state request: a snapshot over
    /// `flights` flight records totalling `bytes` on the wire.
    pub fn request_cost(&self, flights: usize, bytes: usize) -> SimTime {
        self.request_base_us
            + self.snapshot_base_us
            + (self.snapshot_per_flight_us * flights as f64) as SimTime
            + (self.snapshot_per_byte_us * bytes as f64) as SimTime
    }

    /// Cost of a commit that prunes `entries` backup-queue entries.
    pub fn prune_cost(&self, entries: usize) -> SimTime {
        (self.prune_per_event_us * entries as f64) as SimTime
    }

    /// Queue-management surcharge for mirroring one event while `backlog`
    /// entries sit uncommitted in the backup queue.
    pub fn queue_mgmt_cost(&self, backlog: usize) -> SimTime {
        (self.queue_mgmt_per_entry_us * backlog as f64) as SimTime
    }

    /// Cost of having folded `count` original events into one coalesced
    /// wire event (status-table lookups, value combination, copies) —
    /// charged when the coalesced event is emitted.
    pub fn fold_cost(&self, count: u32) -> SimTime {
        self.coalesce_fold_us * count as SimTime
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ede_cost_scales_with_size() {
        let m = CostModel::calibrated();
        let small = m.ede_cost(100);
        let large = m.ede_cost(8000);
        assert!(large > small);
        // Calibration target: ~380µs at tiny events, ~1.5ms at 8KB —
        // 10k events span roughly 4s → 16s as in Figure 4's axes.
        assert!((350..=450).contains(&small), "{small}");
        assert!((1300..=1700).contains(&large), "{large}");
    }

    #[test]
    fn simple_mirroring_overhead_in_paper_band() {
        // Overhead of mirroring one event to one destination relative to
        // EDE processing should sit in the paper's 15–20% band across
        // sizes (Figure 4).
        let m = CostModel::calibrated();
        for bytes in [200usize, 1000, 4000, 8000] {
            let base = m.ede_cost(bytes) as f64;
            let overhead = (m.recv_cost(bytes, 0) + m.send_cost(bytes, 1)) as f64;
            let ratio = overhead / base;
            assert!(
                (0.10..=0.25).contains(&ratio),
                "overhead ratio {ratio:.3} at {bytes}B out of band"
            );
        }
    }

    #[test]
    fn additional_mirror_costs_under_ten_percent() {
        // Figure 5: each added mirror site < 10% of total execution time.
        let m = CostModel::calibrated();
        for bytes in [1000usize, 4000] {
            let base = (m.ede_cost(bytes) + m.recv_cost(bytes, 0) + m.send_cost(bytes, 1)) as f64;
            let extra = (m.send_cost(bytes, 2) - m.send_cost(bytes, 1)) as f64;
            assert!(extra / base < 0.10, "per-mirror increment {:.3} at {bytes}B", extra / base);
        }
    }

    #[test]
    fn request_cost_scales_with_state_and_size() {
        let m = CostModel::calibrated();
        assert!(m.request_cost(1000, 100_000) > m.request_cost(10, 1_000));
        // Larger flight records (bigger events) make snapshots costlier —
        // the lever behind Figure 6's crossover.
        assert!(m.request_cost(100, 100 * 6061) > 2 * m.request_cost(100, 100 * 261));
        // A few hundred flights of ~1KB records → service in the
        // low-millisecond range (sub-minute initialization under load).
        let c = m.request_cost(300, 300 * 1061);
        assert!((2000..=20_000).contains(&c), "{c}");
    }
}
