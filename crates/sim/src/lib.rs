//! # mirror-sim — deterministic discrete-event cluster simulator
//!
//! The paper's experiments ran on an eight-node cluster of 300 MHz
//! Pentium-III dual-processor servers (Solaris 5.5.1) with httperf clients
//! on 100 Mbps Ethernet. We do not have that testbed; what the figures
//! actually encode, though, is the *relative* cost structure — per-event
//! processing vs. per-byte mirroring traffic vs. request-servicing work —
//! and how mirroring policies trade them. This crate provides the
//! substrate on which those experiments rerun deterministically:
//!
//! * [`engine`] — a classic discrete-event scheduler (binary heap, virtual
//!   microsecond clock, stable FIFO tie-breaking) over a set of *nodes*
//!   (serial CPU resources) connected by *links*;
//! * [`link`] — links with latency + bandwidth and a serialization queue,
//!   so a message occupies its link for `bytes / bandwidth` before
//!   propagating;
//! * [`costmodel`] — the calibrated constants standing in for the paper's
//!   hardware (documented per constant, tuned so the *no-mirroring*
//!   baseline and the *simple mirroring* overhead land in the paper's
//!   reported ranges — see EXPERIMENTS.md).
//!
//! The simulator is payload-generic: `mirror-ois` runs the **same**
//! sans-IO `AuxUnit`/`Ede` state machines under it that `mirror-runtime`
//! runs on real threads.

#![warn(missing_docs)]

pub mod costmodel;
pub mod engine;
pub mod link;

pub use costmodel::CostModel;
pub use engine::{NodeId, Sim, SimProcess, Step};
pub use link::LinkParams;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// Convert seconds to sim time.
pub fn secs(s: f64) -> SimTime {
    (s * 1_000_000.0) as SimTime
}

/// Convert sim time to seconds.
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs(1.5), 1_500_000);
        assert!((as_secs(2_500_000) - 2.5).abs() < 1e-9);
    }
}
