//! The discrete-event engine.
//!
//! Nodes are serial CPU resources: a node works on one message at a time;
//! messages delivered while it is busy queue in arrival order. Handling a
//! message costs CPU time (declared by the process via [`Step::cpu_us`])
//! and may emit sends, which traverse links (see [`crate::link`]) and
//! become future deliveries. The engine is fully deterministic: ties are
//! broken by a monotonically increasing sequence number, so identical
//! inputs replay identically — a requirement for regenerating the paper's
//! figures reproducibly.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::link::{LinkParams, LinkState};
use crate::SimTime;

/// Index of a node in the simulation.
pub type NodeId = usize;

/// A message emitted by a process.
#[derive(Debug, Clone)]
pub struct Send<P> {
    /// Destination node.
    pub to: NodeId,
    /// Bytes charged to the link.
    pub bytes: usize,
    /// Payload delivered to the destination process.
    pub payload: P,
}

/// The outcome of handling one message.
#[derive(Debug)]
pub struct Step<P> {
    /// CPU time consumed handling the message (µs).
    pub cpu_us: SimTime,
    /// Messages to send when the CPU work completes.
    pub sends: Vec<Send<P>>,
}

impl<P> Step<P> {
    /// A step that consumes CPU and sends nothing.
    pub fn cpu(cpu_us: SimTime) -> Self {
        Step { cpu_us, sends: Vec::new() }
    }

    /// A free no-op step.
    pub fn none() -> Self {
        Step { cpu_us: 0, sends: Vec::new() }
    }

    /// Builder: add a send.
    pub fn send(mut self, to: NodeId, bytes: usize, payload: P) -> Self {
        self.sends.push(Send { to, bytes, payload });
        self
    }
}

/// A node's process logic.
pub trait SimProcess<P> {
    /// Handle a message delivered at `now`; return the CPU cost and any
    /// sends (which depart when the CPU work finishes).
    fn handle(&mut self, now: SimTime, from: NodeId, payload: P) -> Step<P>;
}

/// Wrapper that lets a harness retain shared access to a process after
/// handing it to the simulator: keep an `Arc` clone, inspect (or
/// reconfigure) the process between/after runs.
pub struct Shared<T>(pub std::sync::Arc<std::sync::Mutex<T>>);

impl<T> Shared<T> {
    /// Wrap a process; clone the `Arc` before moving the wrapper into
    /// [`Sim::new`].
    pub fn new(inner: T) -> (Self, std::sync::Arc<std::sync::Mutex<T>>) {
        let arc = std::sync::Arc::new(std::sync::Mutex::new(inner));
        (Shared(std::sync::Arc::clone(&arc)), arc)
    }
}

impl<T: SimProcess<P>, P> SimProcess<P> for Shared<T> {
    fn handle(&mut self, now: SimTime, from: NodeId, payload: P) -> Step<P> {
        self.0.lock().expect("shared process poisoned").handle(now, from, payload)
    }
}

/// Per-node dynamic state.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    busy_until: SimTime,
    /// Total CPU time consumed (utilization accounting).
    cpu_used: SimTime,
    handled: u64,
}

#[derive(Debug)]
struct Scheduled<P> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    from: NodeId,
    payload: P,
}

impl<P> PartialEq for Scheduled<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for Scheduled<P> {}
impl<P> PartialOrd for Scheduled<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Scheduled<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; ties broken by insertion order.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Statistics snapshot for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages handled.
    pub handled: u64,
    /// CPU µs consumed.
    pub cpu_used: SimTime,
}

/// The simulator: nodes, links, and the event heap.
pub struct Sim<P> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<P>>,
    nodes: Vec<NodeState>,
    processes: Vec<Box<dyn SimProcess<P>>>,
    links: HashMap<(NodeId, NodeId), (LinkParams, LinkState)>,
    default_link: LinkParams,
    /// Hard stop (0 = none); events beyond it are not processed.
    deadline: SimTime,
}

impl<P> Sim<P> {
    /// Build a simulator over the given processes with a default link
    /// parameterization for unconfigured node pairs.
    pub fn new(processes: Vec<Box<dyn SimProcess<P>>>, default_link: LinkParams) -> Self {
        let nodes = vec![NodeState::default(); processes.len()];
        Sim {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes,
            processes,
            links: HashMap::new(),
            default_link,
            deadline: 0,
        }
    }

    /// Configure the link for a directed node pair.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, params: LinkParams) {
        self.links.insert((from, to), (params, LinkState::default()));
    }

    /// Set a hard simulation deadline (µs); 0 disables.
    pub fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = deadline;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inject an external arrival: `payload` delivered to `node` at
    /// absolute time `at` (no link traversal — sources sit at the node's
    /// edge). Panics if `at` is in the past.
    pub fn inject(&mut self, at: SimTime, node: NodeId, payload: P) {
        assert!(at >= self.now, "cannot inject into the past ({at} < {})", self.now);
        self.seq += 1;
        self.heap.push(Scheduled { at, seq: self.seq, to: node, from: node, payload });
    }

    /// Run until the heap is empty (or the deadline passes); returns the
    /// virtual time of the last work completed during this call (0 if the
    /// call performed no work).
    pub fn run(&mut self) -> SimTime {
        let mut last_completion = 0;
        while let Some(ev) = self.heap.pop() {
            if self.deadline != 0 && ev.at > self.deadline {
                break;
            }
            self.now = ev.at;
            // The node is a serial resource: service starts when it frees.
            let start = self.now.max(self.nodes[ev.to].busy_until);
            let step = self.processes[ev.to].handle(start, ev.from, ev.payload);
            let done = start + step.cpu_us;
            let node = &mut self.nodes[ev.to];
            node.busy_until = done;
            node.cpu_used += step.cpu_us;
            node.handled += 1;
            // Idle wakeups (zero CPU, no sends) do not extend the measured
            // completion time — a periodic flush with nothing to drain is
            // not work.
            if step.cpu_us > 0 || !step.sends.is_empty() {
                last_completion = last_completion.max(done);
            }

            for send in step.sends {
                let key = (ev.to, send.to);
                let arrive = if ev.to == send.to {
                    // Intra-node handoff: no link.
                    done
                } else {
                    let default_link = self.default_link;
                    let (params, state) = self
                        .links
                        .entry(key)
                        .or_insert_with(|| (default_link, LinkState::default()));
                    state.transmit(done, send.bytes, params)
                };
                self.seq += 1;
                self.heap.push(Scheduled {
                    at: arrive,
                    seq: self.seq,
                    to: send.to,
                    from: ev.to,
                    payload: send.payload,
                });
            }
        }
        last_completion
    }

    /// Per-node statistics.
    pub fn node_stats(&self, node: NodeId) -> NodeStats {
        let n = &self.nodes[node];
        NodeStats { handled: n.handled, cpu_used: n.cpu_used }
    }

    /// Bytes carried on a directed link so far.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.links.get(&(from, to)).map(|(_, s)| s.bytes).unwrap_or(0)
    }

    /// Borrow a process back (e.g. to read final state after `run`).
    pub fn process(&self, node: NodeId) -> &dyn SimProcess<P> {
        self.processes[node].as_ref()
    }

    /// Mutably borrow a process (e.g. to pre-configure between phases).
    pub fn process_mut(&mut self, node: NodeId) -> &mut (dyn SimProcess<P> + '_) {
        &mut *self.processes[node]
    }

    /// Consume the simulator, returning the processes for inspection.
    pub fn into_processes(self) -> Vec<Box<dyn SimProcess<P>>> {
        self.processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo process: charges a fixed cost, optionally bounces messages.
    struct Echo {
        cost: SimTime,
        bounce_to: Option<NodeId>,
        received: Vec<(SimTime, u32)>,
    }

    impl SimProcess<u32> for Echo {
        fn handle(&mut self, now: SimTime, _from: NodeId, payload: u32) -> Step<u32> {
            self.received.push((now, payload));
            let step = Step::cpu(self.cost);
            match self.bounce_to {
                Some(to) if payload > 0 => step.send(to, 100, payload - 1),
                _ => step,
            }
        }
    }

    fn echo(cost: SimTime, bounce_to: Option<NodeId>) -> Box<Echo> {
        Box::new(Echo { cost, bounce_to, received: Vec::new() })
    }

    #[test]
    fn serial_node_queues_messages() {
        let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(100, None)];
        let mut sim = Sim::new(procs, LinkParams::instant());
        sim.inject(0, 0, 1);
        sim.inject(0, 0, 2);
        sim.inject(0, 0, 3);
        let end = sim.run();
        // Three messages at 100µs each, serviced back to back.
        assert_eq!(end, 300);
        assert_eq!(sim.node_stats(0).handled, 3);
        assert_eq!(sim.node_stats(0).cpu_used, 300);
    }

    #[test]
    fn ping_pong_accumulates_link_and_cpu_time() {
        let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(10, Some(1)), echo(10, Some(0))];
        let mut sim = Sim::new(procs, LinkParams { latency_us: 5, bytes_per_us: 100.0 });
        sim.inject(0, 0, 4); // 4 hops remain after first handling
        let end = sim.run();
        // Each hop: 10 cpu + 1 tx + 5 latency = 16; 5 handlings total.
        // t=0 n0 handles(4) done 10, arrive n1 at 16; n1 done 26, arrive 32;
        // n0 done 42, arrive 48; n1 done 58, arrive 64; n0 handles(0) done 74.
        assert_eq!(end, 74);
        assert_eq!(sim.node_stats(0).handled, 3);
        assert_eq!(sim.node_stats(1).handled, 2);
        assert_eq!(sim.link_bytes(0, 1), 200);
        assert_eq!(sim.link_bytes(1, 0), 200);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two messages injected for the same instant are handled in
        // injection order, every run.
        for _ in 0..5 {
            let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(1, None)];
            let mut sim = Sim::new(procs, LinkParams::instant());
            sim.inject(100, 0, 7);
            sim.inject(100, 0, 8);
            sim.run();
            // Access the concrete process back.
            let boxed = sim.into_processes().remove(0);
            // SAFETY of downcast avoided: reconstruct via raw pointer is
            // overkill; instead rely on handled order via a fresh run below.
            drop(boxed);
        }
        // Observable ordering check via bouncing with distinct payloads:
        let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(1, None), echo(1, Some(0))];
        let mut sim = Sim::new(procs, LinkParams::instant());
        sim.inject(100, 1, 3);
        sim.inject(100, 1, 5);
        let end = sim.run();
        assert!(end >= 102);
    }

    #[test]
    fn deadline_stops_processing() {
        let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(10, None)];
        let mut sim = Sim::new(procs, LinkParams::instant());
        sim.set_deadline(50);
        sim.inject(0, 0, 1);
        sim.inject(100, 0, 2); // beyond deadline
        sim.run();
        assert_eq!(sim.node_stats(0).handled, 1);
    }

    #[test]
    fn identical_schedules_replay_identically() {
        // Determinism is what makes the figure binaries reproducible: the
        // same injections yield the same completion time and stats, runs
        // over runs.
        let run_once = || {
            let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(7, Some(1)), echo(13, Some(0))];
            let mut sim = Sim::new(procs, LinkParams { latency_us: 3, bytes_per_us: 50.0 });
            // A deterministic pseudo-random schedule (no RNG: LCG inline).
            let mut x = 0x2545F491u64;
            for i in 0..200u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let at = i * 10 + (x >> 60);
                let node = ((x >> 33) % 2) as usize;
                sim.inject(at, node, (x >> 40) as u32 % 5);
            }
            let end = sim.run();
            (end, sim.node_stats(0), sim.node_stats(1), sim.link_bytes(0, 1))
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_the_past_panics() {
        let procs: Vec<Box<dyn SimProcess<u32>>> = vec![echo(1, None)];
        let mut sim = Sim::new(procs, LinkParams::instant());
        sim.inject(10, 0, 1);
        sim.run();
        sim.inject(5, 0, 2);
    }

    #[test]
    fn busy_node_delays_service_not_delivery() {
        // A long job then a short one: the short one's service starts when
        // the long one completes, even though it arrived earlier.
        struct Var {
            costs: Vec<SimTime>,
            starts: Vec<SimTime>,
        }
        impl SimProcess<u32> for Var {
            fn handle(&mut self, now: SimTime, _f: NodeId, i: u32) -> Step<u32> {
                self.starts.push(now);
                Step::cpu(self.costs[i as usize])
            }
        }
        let v = Box::new(Var { costs: vec![1000, 10], starts: Vec::new() });
        let mut sim = Sim::new(vec![v as Box<dyn SimProcess<u32>>], LinkParams::instant());
        sim.inject(0, 0, 0);
        sim.inject(1, 0, 1);
        let end = sim.run();
        assert_eq!(end, 1010);
    }
}
