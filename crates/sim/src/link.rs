//! Link modelling: latency, bandwidth, and serialization.
//!
//! A message of `b` bytes sent at time `t` over a link with parameters
//! `(latency, bandwidth)`:
//!
//! 1. waits until the link's transmitter is free (serialization queue —
//!    transmissions on one link do not overlap),
//! 2. occupies the transmitter for `b / bandwidth`,
//! 3. then propagates for `latency` before delivery.
//!
//! This is the standard store-and-forward approximation; it is what makes
//! larger mirrored events cost more in Figure 4 and what lets mirroring
//! traffic interfere with itself when fan-out grows in Figure 5.

use crate::SimTime;

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency (µs).
    pub latency_us: SimTime,
    /// Bandwidth in bytes per microsecond (i.e. MB/s).
    pub bytes_per_us: f64,
}

impl LinkParams {
    /// An effectively infinite link (zero latency, unbounded bandwidth) —
    /// for intra-node delivery.
    pub fn instant() -> Self {
        LinkParams { latency_us: 0, bytes_per_us: f64::INFINITY }
    }

    /// The paper's intra-cluster interconnect: "high bandwidth, low
    /// latency" switched 100 MB/s-class fabric with ~50 µs latency.
    pub fn intra_cluster() -> Self {
        LinkParams { latency_us: 50, bytes_per_us: 100.0 }
    }

    /// The paper's client connectivity: 100 Mbps Ethernet (12.5 MB/s) with
    /// ~200 µs latency.
    pub fn client_ethernet() -> Self {
        LinkParams { latency_us: 200, bytes_per_us: 12.5 }
    }

    /// Transmission (serialization) time for a message of `bytes`.
    pub fn tx_time(&self, bytes: usize) -> SimTime {
        if self.bytes_per_us.is_infinite() {
            0
        } else {
            (bytes as f64 / self.bytes_per_us).ceil() as SimTime
        }
    }
}

/// Dynamic link state: when its transmitter frees up, and counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkState {
    /// Time at which the transmitter becomes idle.
    pub busy_until: SimTime,
    /// Messages carried.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

impl LinkState {
    /// Schedule a transmission starting no earlier than `now`; returns the
    /// delivery time and updates the serialization queue.
    pub fn transmit(&mut self, now: SimTime, bytes: usize, params: &LinkParams) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + params.tx_time(bytes);
        self.busy_until = done;
        self.messages += 1;
        self.bytes += bytes as u64;
        done + params.latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_scales_with_bytes() {
        let p = LinkParams { latency_us: 10, bytes_per_us: 100.0 };
        assert_eq!(p.tx_time(0), 0);
        assert_eq!(p.tx_time(100), 1);
        assert_eq!(p.tx_time(10_000), 100);
    }

    #[test]
    fn instant_link_is_free() {
        let p = LinkParams::instant();
        let mut s = LinkState::default();
        assert_eq!(s.transmit(5, 1_000_000, &p), 5);
        assert_eq!(s.transmit(5, 1_000_000, &p), 5);
    }

    #[test]
    fn serialization_queue_delays_back_to_back_sends() {
        let p = LinkParams { latency_us: 10, bytes_per_us: 1.0 };
        let mut s = LinkState::default();
        // 100-byte message at t=0: tx 0..100, arrives 110.
        assert_eq!(s.transmit(0, 100, &p), 110);
        // Second message at t=0 must wait: tx 100..200, arrives 210.
        assert_eq!(s.transmit(0, 100, &p), 210);
        // A later message after the queue drained starts immediately.
        assert_eq!(s.transmit(500, 100, &p), 610);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 300);
    }

    #[test]
    fn paper_presets_are_sane() {
        let intra = LinkParams::intra_cluster();
        let client = LinkParams::client_ethernet();
        // Intra-cluster must be far faster than the client network, which
        // is the architectural premise of mirroring (§1).
        assert!(intra.bytes_per_us > 4.0 * client.bytes_per_us);
        assert!(intra.latency_us < client.latency_us);
        // 8 KB over 100 Mbps ≈ 655 µs.
        let t = client.tx_time(8192);
        assert!((600..=700).contains(&t), "8KB on client link took {t}µs");
    }
}
