//! Cross-thread stress tests for the lock-free rings (`mirror_core::ring`).
//!
//! The apply path trusts these rings with every event a site processes, so
//! the properties checked here are the load-bearing ones:
//!
//! * **no lost or duplicated events** — every value pushed is popped
//!   exactly once, across real producer/consumer threads;
//! * **bounded-capacity backpressure** — a full ring refuses the item and
//!   hands it back rather than dropping or reallocating;
//! * **exact statistics** — after both sides finish,
//!   `enqueued == dequeued + still-buffered` and the high watermark never
//!   exceeds capacity.
//!
//! The tests run multiple seeds-worth of interleavings by looping; on a
//! single-core host the escalating backoff in the ring forces genuine
//! preemption-driven interleavings rather than lockstep spinning.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use mirror_core::ring::{mpsc, spsc, RingRecv, RingSend};

/// SPSC: a producer thread pushes a strictly increasing sequence through a
/// small ring while the consumer pops; FIFO order, no loss, no dups, exact
/// stats.
#[test]
fn spsc_cross_thread_fifo_no_loss() {
    const N: u64 = 200_000;
    let (mut tx, mut rx) = spsc::<u64>(64);

    let producer = thread::spawn(move || {
        for i in 0..N {
            tx.send(i).expect("consumer alive");
        }
        tx.stats()
    });

    let mut expected = 0u64;
    loop {
        match rx.try_recv() {
            RingRecv::Item(v) => {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            }
            RingRecv::Empty => thread::yield_now(),
            RingRecv::Disconnected => break,
        }
    }
    assert_eq!(expected, N, "lost events");

    let sent = producer.join().unwrap();
    let st = rx.stats();
    assert_eq!(sent.enqueued, N);
    assert_eq!(st.enqueued, N);
    assert_eq!(st.dequeued, N);
    assert!(st.high_watermark <= 64, "watermark {} > capacity", st.high_watermark);
    assert!(st.high_watermark >= 1);
}

/// SPSC backpressure: with the consumer stalled, exactly `capacity` pushes
/// succeed and the next is refused with the item intact; after draining
/// one, one more push fits.
#[test]
fn spsc_backpressure_is_exact() {
    let (mut tx, mut rx) = spsc::<u64>(8);
    let cap = tx.capacity();
    for i in 0..cap as u64 {
        tx.try_send(i).expect("within capacity");
    }
    match tx.try_send(999) {
        Err(RingSend::Full(v)) => assert_eq!(v, 999, "refused item must come back intact"),
        other => panic!("expected Full, got {other:?}"),
    }
    assert_eq!(tx.stats().enqueued, cap as u64, "refused push must not count");
    assert_eq!(rx.try_recv(), RingRecv::Item(0));
    tx.try_send(999).expect("one slot freed");
    let st = tx.stats();
    assert_eq!(st.high_watermark, cap, "watermark is exactly the full occupancy");
}

/// MPSC: several producer threads push disjoint tagged ranges; the consumer
/// must see every value exactly once, in per-producer FIFO order, with
/// exact totals.
#[test]
fn mpsc_cross_thread_no_loss_no_dup() {
    const PRODUCERS: u64 = 4;
    const PER: u64 = 50_000;
    let (tx, mut rx) = mpsc::<u64>(128);

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                // Tag the value with its producer so per-producer order is
                // checkable on the consumer side.
                tx.send(p * PER + i).expect("consumer alive");
            }
        }));
    }
    drop(tx);

    let mut seen = HashSet::new();
    let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
    loop {
        match rx.try_recv() {
            RingRecv::Item(v) => {
                assert!(seen.insert(v), "duplicated event {v}");
                let p = (v / PER) as usize;
                let i = v % PER;
                if let Some(prev) = last_per_producer[p] {
                    assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                }
                last_per_producer[p] = Some(i);
            }
            RingRecv::Empty => thread::yield_now(),
            RingRecv::Disconnected => break,
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(seen.len() as u64, PRODUCERS * PER, "lost events");
    let st = rx.stats();
    assert_eq!(st.enqueued, PRODUCERS * PER);
    assert_eq!(st.dequeued, PRODUCERS * PER);
    assert!(st.high_watermark <= 128);
}

/// MPSC under contention on a tiny ring: constant Full/retry churn must not
/// lose, duplicate, or miscount. This is the interleaving-heavy case — with
/// capacity 2 every push contends with the consumer and other producers.
#[test]
fn mpsc_tiny_ring_contention() {
    const PRODUCERS: u64 = 3;
    const PER: u64 = 20_000;
    let (tx, mut rx) = mpsc::<u64>(2);
    let popped = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            for i in 0..PER {
                tx.send(p * PER + i).expect("consumer alive");
            }
        }));
    }
    drop(tx);

    let mut sum = 0u128;
    loop {
        match rx.try_recv() {
            RingRecv::Item(v) => {
                sum += v as u128;
                popped.fetch_add(1, Ordering::Relaxed);
            }
            RingRecv::Empty => thread::yield_now(),
            RingRecv::Disconnected => break,
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    let n = PRODUCERS * PER;
    assert_eq!(popped.load(Ordering::Relaxed), n);
    // Sum of 0..n is order-independent: catches any lost+duplicated swap
    // that a pure count would miss.
    assert_eq!(sum, (0..n as u128).sum::<u128>());
    let st = rx.stats();
    assert_eq!((st.enqueued, st.dequeued), (n, n));
    assert!(st.high_watermark <= 2, "watermark {} exceeds capacity 2", st.high_watermark);
}

/// Dropping the consumer mid-stream: producers observe Disconnected instead
/// of spinning forever, and stats stay consistent (enqueued never exceeds
/// what was accepted).
#[test]
fn mpsc_consumer_drop_unblocks_producers() {
    let (tx, rx) = mpsc::<u64>(4);
    let tx2 = tx.clone();
    let stats_handle = tx.clone();

    let h1 = thread::spawn(move || {
        let mut sent = 0u64;
        loop {
            match tx.send(sent) {
                Ok(()) => sent += 1,
                Err(_) => return sent,
            }
        }
    });
    let h2 = thread::spawn(move || {
        let mut sent = 0u64;
        loop {
            match tx2.send(1_000_000 + sent) {
                Ok(()) => sent += 1,
                Err(_) => return sent,
            }
        }
    });

    // Let the ring fill, then kill the consumer.
    thread::sleep(std::time::Duration::from_millis(20));
    drop(rx);

    let s1 = h1.join().unwrap();
    let s2 = h2.join().unwrap();
    let st = stats_handle.stats();
    assert_eq!(st.enqueued, s1 + s2, "accepted pushes must equal producer-side successes");
    assert!(st.dequeued <= st.enqueued);
}

/// SPSC pipeline chain (the dispatcher→worker shape): events flow through
/// two rings in series across three threads; end-to-end order and totals
/// hold.
#[test]
fn spsc_two_stage_pipeline() {
    const N: u64 = 100_000;
    let (mut tx_a, mut rx_a) = spsc::<u64>(32);
    let (mut tx_b, mut rx_b) = spsc::<u64>(32);

    let stage1 = thread::spawn(move || {
        for i in 0..N {
            tx_a.send(i).unwrap();
        }
    });
    let stage2 = thread::spawn(move || loop {
        match rx_a.try_recv() {
            RingRecv::Item(v) => tx_b.send(v * 2).unwrap(),
            RingRecv::Empty => thread::yield_now(),
            RingRecv::Disconnected => break,
        }
    });

    let mut expected = 0u64;
    loop {
        match rx_b.try_recv() {
            RingRecv::Item(v) => {
                assert_eq!(v, expected * 2);
                expected += 1;
            }
            RingRecv::Empty => thread::yield_now(),
            RingRecv::Disconnected => break,
        }
    }
    assert_eq!(expected, N);
    stage1.join().unwrap();
    stage2.join().unwrap();
}
