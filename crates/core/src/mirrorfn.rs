//! Mirroring and forwarding functions.
//!
//! The sending task removes events from the ready queue and mirrors them
//! onto all outgoing channels. *How* that happens is customizable: the
//! paper's `set_mirror()` / `set_fwd()` calls install programmer-provided
//! functions, and the built-in alternatives ("simple", "selective",
//! coalescing) are what the evaluation compares (Figures 4, 7, 8, 9).
//!
//! A [`MirrorFn`] is a send-path batch transform: it receives the run of
//! events drained from the ready queue and returns the events actually
//! placed on the wire. Receive-path selectivity (overwriting, complex
//! rules) lives in [`crate::rules::RuleSet`]; the named
//! [`MirrorFnKind`] presets bundle both so whole configurations can be
//! named, compared, and shipped to mirrors during adaptation.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventBody, EventType, PositionFix};
use crate::params::MirrorParams;
use crate::rules::{Rule, RuleSet};

/// Decision returned by per-event custom forwarding functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorDecision {
    /// Put the event on the wire.
    Send,
    /// Silently drop it.
    Drop,
}

/// A send-path mirroring function: transforms the batch of ready events
/// into the batch of wire events. Implementations may hold partial state
/// across calls (e.g. per-flight coalescing runs); [`flush`](MirrorFn::flush)
/// releases it.
pub trait MirrorFn: Send {
    /// Transform a drained ready-queue run into the events to mirror.
    fn prepare(&mut self, batch: Vec<Event>, params: &MirrorParams) -> Vec<Event>;

    /// Emit any partially accumulated wire events (sending-task wakeup /
    /// end of stream). Default: nothing buffered.
    fn flush(&mut self, _params: &MirrorParams) -> Vec<Event> {
        Vec::new()
    }

    /// Human-readable name (for logs and experiment output).
    fn name(&self) -> &'static str;
}

/// Mirror every event independently — the paper's *simple* mirroring.
#[derive(Debug, Default, Clone, Copy)]
pub struct IndependentMirror;

impl MirrorFn for IndependentMirror {
    fn prepare(&mut self, batch: Vec<Event>, _params: &MirrorParams) -> Vec<Event> {
        batch
    }
    fn name(&self) -> &'static str {
        "independent"
    }
}

/// Coalesce position events **per flight** before mirroring: up to
/// `params.coalesce_max` consecutive fixes for a flight collapse into one
/// [`crate::event::EventBody::Coalesced`] wire event carrying the latest
/// fix ("coalesces up to 10 events and then produces one mirror event, thus
/// overwriting up to 10 flight position events" — §4.3).
///
/// Runs accumulate *across* sending-task drains — the status-table-style
/// state lives here — and are closed by (a) reaching the cap, (b) a
/// non-position event for the same flight (ordering with status changes is
/// preserved), or (c) a [`flush`](MirrorFn::flush).
#[derive(Debug, Default)]
pub struct CoalescingMirror {
    open: std::collections::HashMap<u32, Event>,
}

impl CoalescingMirror {
    /// A coalescer with no open runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of flights with an open (partially accumulated) run.
    pub fn open_runs(&self) -> usize {
        self.open.len()
    }

    fn fold(&mut self, ev: Event, fix: PositionFix, cap: u32, out: &mut Vec<Event>) {
        let slot = self.open.entry(ev.flight).or_insert_with(|| {
            let mut c = ev.clone();
            c.body = EventBody::Coalesced { last: fix, count: 0 };
            c
        });
        if let EventBody::Coalesced { last, count } = &mut slot.body {
            *last = fix;
            *count += 1;
            slot.stamp.merge(&ev.stamp);
            slot.seq = ev.seq;
            // Oldest folded-in ingress governs the update-delay metric.
            slot.ingress_us = slot.ingress_us.min(ev.ingress_us);
            slot.padding = slot.padding.max(ev.padding);
            if *count >= cap {
                let done = self.open.remove(&ev.flight).expect("slot exists");
                out.push(done);
            }
        }
    }
}

impl MirrorFn for CoalescingMirror {
    fn prepare(&mut self, batch: Vec<Event>, params: &MirrorParams) -> Vec<Event> {
        if !params.coalesce || params.coalesce_max <= 1 {
            // Disabled: release anything buffered, then pass through.
            let mut out = self.flush(params);
            out.extend(batch);
            return out;
        }
        let cap = params.coalesce_max;
        let mut out = Vec::with_capacity(batch.len());
        for ev in batch {
            match ev.body {
                EventBody::Position(p) => self.fold(ev, p, cap, &mut out),
                _ => {
                    // Close this flight's run first so status/position
                    // ordering survives coalescing.
                    if let Some(open) = self.open.remove(&ev.flight) {
                        out.push(open);
                    }
                    out.push(ev);
                }
            }
        }
        out
    }

    fn flush(&mut self, _params: &MirrorParams) -> Vec<Event> {
        let mut out: Vec<Event> = self.open.drain().map(|(_, e)| e).collect();
        // Deterministic emission order regardless of hash-map iteration.
        out.sort_by_key(|e| (e.flight, e.seq));
        out
    }

    fn name(&self) -> &'static str {
        "coalescing"
    }
}

/// Adapter turning a per-event closure into a [`MirrorFn`] — the escape
/// hatch behind `set_mirror(func)` / `set_fwd(func)` for arbitrary
/// application code.
pub struct FnMirror<F> {
    f: F,
    label: &'static str,
}

impl<F> FnMirror<F>
where
    F: FnMut(&Event, &MirrorParams) -> MirrorDecision + Send,
{
    /// Wrap a per-event decision function.
    pub fn new(label: &'static str, f: F) -> Self {
        FnMirror { f, label }
    }
}

impl<F> MirrorFn for FnMirror<F>
where
    F: FnMut(&Event, &MirrorParams) -> MirrorDecision + Send,
{
    fn prepare(&mut self, batch: Vec<Event>, params: &MirrorParams) -> Vec<Event> {
        batch.into_iter().filter(|e| (self.f)(e, params) == MirrorDecision::Send).collect()
    }
    fn name(&self) -> &'static str {
        self.label
    }
}

/// Named, serializable mirroring configurations — the units the adaptation
/// controller switches between and the configurations the paper's figures
/// compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MirrorFnKind {
    /// No mirroring at all (the paper's baseline in Figure 4).
    None,
    /// Default mirroring: every event mirrored independently.
    Simple,
    /// Selective mirroring: overwrite runs of up to `overwrite` position
    /// events per flight (mirror one in `overwrite`).
    Selective {
        /// Maximum overwrite sequence length.
        overwrite: u32,
    },
    /// Coalescing mirroring: fold up to `coalesce` position events into one
    /// wire event (§4.3's normal adaptive profile).
    Coalescing {
        /// Maximum events folded per coalesced wire event.
        coalesce: u32,
        /// Checkpoint frequency (events between checkpoints).
        checkpoint_every: u32,
    },
    /// Overwriting mirroring with an explicit checkpoint interval —
    /// §4.3's degraded profile ("overwrites up to 20 flight position
    /// events and performs checkpointing every 100 events"): discards
    /// superseded events outright instead of folding them.
    Overwriting {
        /// Maximum overwrite sequence length.
        overwrite: u32,
        /// Checkpoint frequency (events between checkpoints).
        checkpoint_every: u32,
    },
}

impl MirrorFnKind {
    /// Build the send-path function for this kind.
    pub fn build(&self) -> Box<dyn MirrorFn> {
        match self {
            MirrorFnKind::None
            | MirrorFnKind::Simple
            | MirrorFnKind::Selective { .. }
            | MirrorFnKind::Overwriting { .. } => Box::new(IndependentMirror),
            MirrorFnKind::Coalescing { .. } => Box::new(CoalescingMirror::new()),
        }
    }

    /// Build the receive-path rule set for this kind.
    pub fn rules(&self) -> RuleSet {
        match self {
            MirrorFnKind::None | MirrorFnKind::Simple | MirrorFnKind::Coalescing { .. } => {
                RuleSet::new()
            }
            MirrorFnKind::Selective { overwrite } | MirrorFnKind::Overwriting { overwrite, .. } => {
                RuleSet::new()
                    .with(Rule::Overwrite { ty: EventType::FaaPosition, max_len: *overwrite })
            }
        }
    }

    /// Build the parameter set for this kind, starting from `base`.
    pub fn params(&self, base: &MirrorParams) -> MirrorParams {
        let mut p = base.clone();
        match self {
            MirrorFnKind::None | MirrorFnKind::Simple => {
                p.coalesce = false;
                p.coalesce_max = 1;
                p.overwrite_max = 0;
            }
            MirrorFnKind::Selective { overwrite } => {
                p.coalesce = false;
                p.coalesce_max = 1;
                p.overwrite_max = *overwrite;
            }
            MirrorFnKind::Coalescing { coalesce, checkpoint_every } => {
                p.coalesce = *coalesce > 1;
                p.coalesce_max = *coalesce;
                p.overwrite_max = *coalesce;
                p.checkpoint_every = *checkpoint_every;
            }
            MirrorFnKind::Overwriting { overwrite, checkpoint_every } => {
                p.coalesce = false;
                p.coalesce_max = 1;
                p.overwrite_max = *overwrite;
                p.checkpoint_every = *checkpoint_every;
            }
        }
        p.touch();
        p
    }

    /// Does this configuration mirror at all?
    pub fn mirrors(&self) -> bool {
        !matches!(self, MirrorFnKind::None)
    }

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            MirrorFnKind::None => "no-mirroring",
            MirrorFnKind::Simple => "simple",
            MirrorFnKind::Selective { .. } => "selective",
            MirrorFnKind::Coalescing { .. } => "coalescing",
            MirrorFnKind::Overwriting { .. } => "overwriting",
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::event::{EventBody, PositionFix};

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 1000.0, speed_kts: 1.0, heading_deg: 0.0 }
    }

    fn batch(n: u64, flight: u32) -> Vec<Event> {
        (1..=n).map(|s| Event::faa_position(s, flight, fix())).collect()
    }

    #[test]
    fn independent_mirror_is_identity() {
        let mut m = IndependentMirror;
        let b = batch(5, 1);
        let out = m.prepare(b.clone(), &MirrorParams::default());
        assert_eq!(out, b);
    }

    #[test]
    fn coalescing_mirror_folds_when_enabled() {
        let mut m = CoalescingMirror::new();
        let mut p = MirrorParams::default();
        p.coalesce = true;
        p.coalesce_max = 10;
        let out = m.prepare(batch(10, 1), &p);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].body, EventBody::Coalesced { count: 10, .. }));
        assert_eq!(m.open_runs(), 0);
    }

    #[test]
    fn coalescing_accumulates_across_drains() {
        let mut m = CoalescingMirror::new();
        let mut p = MirrorParams::default();
        p.coalesce = true;
        p.coalesce_max = 4;
        // Events arrive one drain at a time (the realistic pattern).
        let mut out = Vec::new();
        for seq in 1..=7 {
            out.extend(
                m.prepare(
                    batch(1, 1)
                        .into_iter()
                        .map(|mut e| {
                            e.seq = seq;
                            e
                        })
                        .collect(),
                    &p,
                ),
            );
        }
        assert_eq!(out.len(), 1, "first run of 4 closed");
        assert!(matches!(out[0].body, EventBody::Coalesced { count: 4, .. }));
        assert_eq!(m.open_runs(), 1, "3 events still open");
        let tail = m.flush(&p);
        assert_eq!(tail.len(), 1);
        assert!(matches!(tail[0].body, EventBody::Coalesced { count: 3, .. }));
        assert_eq!(m.open_runs(), 0);
    }

    #[test]
    fn coalescing_runs_are_per_flight() {
        let mut m = CoalescingMirror::new();
        let mut p = MirrorParams::default();
        p.coalesce = true;
        p.coalesce_max = 3;
        let mut evs = Vec::new();
        for seq in 1..=6 {
            let mut e = batch(1, (seq % 2) as u32 + 1).remove(0);
            e.seq = seq;
            evs.push(e);
        }
        let out = m.prepare(evs, &p);
        assert_eq!(out.len(), 2, "each flight closed one run of 3");
        for e in &out {
            assert!(matches!(e.body, EventBody::Coalesced { count: 3, .. }));
        }
    }

    #[test]
    fn status_event_closes_open_run_in_order() {
        let mut m = CoalescingMirror::new();
        let mut p = MirrorParams::default();
        p.coalesce = true;
        p.coalesce_max = 10;
        let mut evs = batch(2, 1);
        evs.push(Event::delta_status(1, 1, crate::event::FlightStatus::Landed));
        let out = m.prepare(evs, &p);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].body, EventBody::Coalesced { count: 2, .. }));
        assert!(matches!(out[1].body, EventBody::Status(_)));
    }

    #[test]
    fn coalescing_mirror_passthrough_when_disabled() {
        let mut m = CoalescingMirror::new();
        let p = MirrorParams::default(); // coalesce = false
        let out = m.prepare(batch(4, 1), &p);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn fn_mirror_filters_per_event() {
        let mut m = FnMirror::new("odd-only", |e: &Event, _: &MirrorParams| {
            if e.seq % 2 == 1 {
                MirrorDecision::Send
            } else {
                MirrorDecision::Drop
            }
        });
        let out = m.prepare(batch(6, 1), &MirrorParams::default());
        assert_eq!(out.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(m.name(), "odd-only");
    }

    #[test]
    fn kind_builds_consistent_config() {
        let k = MirrorFnKind::Selective { overwrite: 10 };
        assert_eq!(k.rules().rules().len(), 1);
        let p = k.params(&MirrorParams::default());
        assert_eq!(p.overwrite_max, 10);
        assert!(!p.coalesce);

        let k = MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 };
        let p = k.params(&MirrorParams::default());
        assert!(p.coalesce);
        assert_eq!(p.coalesce_max, 20);
        assert_eq!(p.checkpoint_every, 100);
        assert!(k.rules().is_empty());
    }

    #[test]
    fn kind_labels_and_mirrors_flag() {
        assert!(!MirrorFnKind::None.mirrors());
        assert!(MirrorFnKind::Simple.mirrors());
        assert_eq!(MirrorFnKind::Simple.label(), "simple");
        assert_eq!(MirrorFnKind::Selective { overwrite: 5 }.label(), "selective");
    }
}
