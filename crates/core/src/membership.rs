//! Epoch-stamped cluster membership.
//!
//! The paper treats the mirror set as an *adaptation target*: mirrors exist
//! to parallelize bursty request loads away from the central site (§1), and
//! §3.2.2's monitor/threshold machinery decides at runtime how much work
//! they absorb. That only pays off if the set of mirrors itself can change
//! while traffic flows. This module is the shared vocabulary for that:
//!
//! * [`MembershipView`] — an immutable, `Arc`-shared snapshot of every
//!   site's [`SiteState`], stamped with a monotonically increasing
//!   **epoch** that is bumped on every change. Consumers (balancer,
//!   gateway, checkpointer, bridges) hold a cheap clone and compare epochs
//!   to detect change; nobody blocks a membership writer.
//! * [`MembershipRegistry`] — the single writer: validated state
//!   transitions (`admit`, `suspect`, `restore`, `retire`) each install a
//!   freshly built view under a short lock and return the new epoch.
//! * [`MembershipError`] — the typed result of an invalid transition,
//!   replacing the index `assert!`s that membership operations used to
//!   panic with.
//!
//! The epoch also rides the checkpoint control traffic
//! ([`crate::ControlMsg::Chkpt`] / [`crate::ControlMsg::Commit`]), so every
//! site learns the membership generation in force when a round was formed —
//! a mirror admitted mid-stream can tell which directives and rounds
//! predate it.

use std::fmt;
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use crate::control::{SiteId, CENTRAL_SITE};

/// Lifecycle state of one cluster site within a [`MembershipView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteState {
    /// Participating in mirroring, checkpoint rounds and request routing.
    Live,
    /// Failed or unreachable: excluded from routing and round completion,
    /// but expected back (a rejoin restores it to [`SiteState::Live`]).
    Suspect,
    /// Permanently removed (scale-in, or promoted away). Its id is never
    /// reused, so retained logs and old control messages stay unambiguous.
    Retired,
}

/// One immutable snapshot of cluster membership, stamped with the epoch at
/// which it was installed.
///
/// Views are shared as `Arc<MembershipView>` and never mutated; a change
/// builds a new view with `epoch + 1`. Two views with the same epoch are
/// identical, so consumers cache per-epoch derived state (routing tables,
/// participant lists) keyed by [`MembershipView::epoch`] alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipView {
    epoch: u64,
    /// `(site, state)` pairs in ascending site order; the central site is
    /// not listed (it is definitionally live while the cluster runs).
    entries: Vec<(SiteId, SiteState)>,
}

impl MembershipView {
    /// The view in force before any membership change: `mirrors` live
    /// mirror sites numbered `1..=mirrors`, at epoch 0.
    pub fn initial(mirrors: u16) -> Self {
        Self { epoch: 0, entries: (1..=mirrors).map(|s| (s, SiteState::Live)).collect() }
    }

    /// The membership generation this view represents.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// State of `site`, or `None` if the site was never admitted. The
    /// central site reports [`SiteState::Live`].
    pub fn state_of(&self, site: SiteId) -> Option<SiteState> {
        if site == CENTRAL_SITE {
            return Some(SiteState::Live);
        }
        self.entries.iter().find(|(s, _)| *s == site).map(|(_, st)| *st)
    }

    /// Is `site` live in this view?
    pub fn is_live(&self, site: SiteId) -> bool {
        self.state_of(site) == Some(SiteState::Live)
    }

    /// Live mirror sites, ascending (the central site is not included).
    pub fn live_mirrors(&self) -> Vec<SiteId> {
        self.entries.iter().filter(|(_, st)| *st == SiteState::Live).map(|(s, _)| *s).collect()
    }

    /// Number of live mirror sites.
    pub fn live_count(&self) -> usize {
        self.entries.iter().filter(|(_, st)| *st == SiteState::Live).count()
    }

    /// All `(site, state)` entries, ascending by site id.
    pub fn entries(&self) -> &[(SiteId, SiteState)] {
        &self.entries
    }

    /// The smallest mirror id never yet admitted (retired ids are not
    /// reused).
    pub fn next_site_id(&self) -> SiteId {
        self.entries.last().map_or(1, |(s, _)| s + 1)
    }
}

/// Why a membership operation was refused.
///
/// These replace the index-bounds `assert!`s that `fail_mirror` /
/// `rejoin_mirror` / `promote_mirror` / `recover_site` / `snapshot` used to
/// panic with: an invalid site is now an error value the caller can route,
/// log or retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// The site id was never admitted to the cluster.
    UnknownSite(SiteId),
    /// The operation needs a live site, but this one is suspect or stopped.
    NotLive(SiteId),
    /// The site is already live (e.g. admitting or rejoining a live site).
    AlreadyLive(SiteId),
    /// The site has been retired; retired ids never return.
    Retired(SiteId),
    /// The operation does not apply to the central site.
    IsCentral,
    /// The operation needs a durable store (journal or snapshot directory)
    /// and the cluster was started without one.
    NoDurableStore,
    /// A durable-store operation failed; the payload is the underlying
    /// I/O error rendered to text.
    Store(String),
    /// A control message (or reply) carried a leadership term older than
    /// the one in force — it came from a fenced-out former coordinator
    /// and was discarded.
    StaleTerm {
        /// The term the offending message carried.
        stale: u64,
        /// The term currently in force at the receiver.
        current: u64,
    },
    /// A promotion's quiesce window expired while the candidate mirror was
    /// still applying delivered events: seeding a coordinator from it now
    /// would silently start the new central *behind* the survivors, so
    /// the promotion was aborted instead.
    QuiesceTimeout {
        /// The mirror that failed to quiesce in time.
        site: SiteId,
        /// Events the mirror had processed when the deadline expired (its
        /// counter was still advancing past this value).
        processed: u64,
    },
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::UnknownSite(s) => write!(f, "site {s} was never admitted"),
            MembershipError::NotLive(s) => write!(f, "site {s} is not live"),
            MembershipError::AlreadyLive(s) => write!(f, "site {s} is already live"),
            MembershipError::Retired(s) => write!(f, "site {s} is retired"),
            MembershipError::IsCentral => write!(f, "operation does not apply to the central site"),
            MembershipError::NoDurableStore => {
                write!(f, "cluster was started without a durable store")
            }
            MembershipError::Store(e) => write!(f, "durable store error: {e}"),
            MembershipError::StaleTerm { stale, current } => {
                write!(f, "stale leadership term {stale} (term {current} is in force)")
            }
            MembershipError::QuiesceTimeout { site, processed } => {
                write!(
                    f,
                    "site {site} did not quiesce before the promotion deadline \
                     (still applying past {processed} processed events)"
                )
            }
        }
    }
}

impl std::error::Error for MembershipError {}

impl From<std::io::Error> for MembershipError {
    fn from(e: std::io::Error) -> Self {
        MembershipError::Store(e.to_string())
    }
}

/// The single writer of membership state: validated transitions, each
/// installing a new [`MembershipView`] with a bumped epoch.
///
/// Readers call [`view`](Self::view) (an `Arc` clone under a short read
/// lock) and never observe a half-applied change. All transitions take
/// `&self`, which is what lets `Cluster`'s membership operations shed their
/// `&mut self` receivers.
pub struct MembershipRegistry {
    view: RwLock<Arc<MembershipView>>,
}

impl MembershipRegistry {
    /// A registry over `mirrors` live sites `1..=mirrors` at epoch 0.
    pub fn new(mirrors: u16) -> Self {
        Self { view: RwLock::new(Arc::new(MembershipView::initial(mirrors))) }
    }

    /// The current view (cheap: one `Arc` clone).
    pub fn view(&self) -> Arc<MembershipView> {
        Arc::clone(&self.view.read().expect("membership lock poisoned"))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.view.read().expect("membership lock poisoned").epoch
    }

    /// Admit a brand-new site as [`SiteState::Live`]. Returns the new
    /// epoch. Fails if the id is already known (live, suspect or retired).
    pub fn admit(&self, site: SiteId) -> Result<u64, MembershipError> {
        self.transition(site, |state| match state {
            None => Ok(SiteState::Live),
            Some(SiteState::Retired) => Err(MembershipError::Retired(site)),
            Some(_) => Err(MembershipError::AlreadyLive(site)),
        })
    }

    /// Mark a live site [`SiteState::Suspect`] (failure observed). Returns
    /// the new epoch.
    pub fn suspect(&self, site: SiteId) -> Result<u64, MembershipError> {
        self.transition(site, |state| match state {
            Some(SiteState::Live) => Ok(SiteState::Suspect),
            Some(SiteState::Suspect) => Err(MembershipError::NotLive(site)),
            Some(SiteState::Retired) => Err(MembershipError::Retired(site)),
            None => Err(MembershipError::UnknownSite(site)),
        })
    }

    /// Restore a suspect site to [`SiteState::Live`] (rejoin/recovery).
    /// Returns the new epoch.
    pub fn restore(&self, site: SiteId) -> Result<u64, MembershipError> {
        self.transition(site, |state| match state {
            Some(SiteState::Suspect) | Some(SiteState::Live) => Ok(SiteState::Live),
            Some(SiteState::Retired) => Err(MembershipError::Retired(site)),
            None => Err(MembershipError::UnknownSite(site)),
        })
    }

    /// Permanently retire a site (scale-in or promotion). Returns the new
    /// epoch.
    pub fn retire(&self, site: SiteId) -> Result<u64, MembershipError> {
        self.transition(site, |state| match state {
            Some(SiteState::Live) | Some(SiteState::Suspect) => Ok(SiteState::Retired),
            Some(SiteState::Retired) => Err(MembershipError::Retired(site)),
            None => Err(MembershipError::UnknownSite(site)),
        })
    }

    /// The next never-used mirror id (for spawning a fresh mirror).
    pub fn next_site_id(&self) -> SiteId {
        self.view.read().expect("membership lock poisoned").next_site_id()
    }

    fn transition(
        &self,
        site: SiteId,
        f: impl FnOnce(Option<SiteState>) -> Result<SiteState, MembershipError>,
    ) -> Result<u64, MembershipError> {
        if site == CENTRAL_SITE {
            return Err(MembershipError::IsCentral);
        }
        let mut guard = self.view.write().expect("membership lock poisoned");
        let current = guard.state_of(site);
        let next = f(current)?;
        let mut entries = guard.entries.clone();
        match entries.iter_mut().find(|(s, _)| *s == site) {
            Some(e) => e.1 = next,
            None => {
                entries.push((site, next));
                entries.sort_by_key(|(s, _)| *s);
            }
        }
        let epoch = guard.epoch + 1;
        *guard = Arc::new(MembershipView { epoch, entries });
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_view_lists_live_mirrors() {
        let v = MembershipView::initial(3);
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.live_mirrors(), vec![1, 2, 3]);
        assert_eq!(v.live_count(), 3);
        assert!(v.is_live(CENTRAL_SITE), "central is definitionally live");
        assert_eq!(v.state_of(9), None);
        assert_eq!(v.next_site_id(), 4);
    }

    #[test]
    fn every_transition_bumps_the_epoch_once() {
        let r = MembershipRegistry::new(2);
        assert_eq!(r.suspect(1).unwrap(), 1);
        assert_eq!(r.restore(1).unwrap(), 2);
        assert_eq!(r.admit(3).unwrap(), 3);
        assert_eq!(r.retire(3).unwrap(), 4);
        assert_eq!(r.epoch(), 4);
        let v = r.view();
        assert_eq!(v.live_mirrors(), vec![1, 2]);
        assert_eq!(v.state_of(3), Some(SiteState::Retired));
    }

    #[test]
    fn invalid_transitions_are_typed_errors() {
        let r = MembershipRegistry::new(1);
        assert_eq!(r.suspect(7), Err(MembershipError::UnknownSite(7)));
        assert_eq!(r.admit(1), Err(MembershipError::AlreadyLive(1)));
        assert_eq!(r.suspect(CENTRAL_SITE), Err(MembershipError::IsCentral));
        r.retire(1).unwrap();
        assert_eq!(r.restore(1), Err(MembershipError::Retired(1)));
        assert_eq!(r.admit(1), Err(MembershipError::Retired(1)));
        assert_eq!(r.suspect(1), Err(MembershipError::Retired(1)));
    }

    #[test]
    fn retired_ids_are_never_reused() {
        let r = MembershipRegistry::new(2);
        r.retire(2).unwrap();
        assert_eq!(r.next_site_id(), 3);
        r.admit(3).unwrap();
        r.retire(3).unwrap();
        assert_eq!(r.next_site_id(), 4);
    }

    #[test]
    fn views_are_immutable_snapshots() {
        let r = MembershipRegistry::new(1);
        let before = r.view();
        r.admit(2).unwrap();
        let after = r.view();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.live_count(), 1, "old snapshot unchanged");
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.live_mirrors(), vec![1, 2]);
    }

    #[test]
    fn failed_transition_leaves_epoch_alone() {
        let r = MembershipRegistry::new(1);
        assert!(r.suspect(5).is_err());
        assert_eq!(r.epoch(), 0);
    }
}
