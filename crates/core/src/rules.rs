//! Semantic mirroring rules.
//!
//! "By performing mirroring at the middleware level, application semantics
//! may be used to reduce mirroring traffic" (paper §1). This module
//! implements the rule vocabulary of §3.2.1:
//!
//! * **type/content filters** — do not mirror events of a type, or whose
//!   content fails a predicate;
//! * **overwriting** — for an event type where a later event supersedes
//!   earlier ones (FAA position fixes), mirror only one event per flight out
//!   of every `max_len`;
//! * **complex sequences** (`set_complex_seq`) — once a trigger event with a
//!   given value is seen for a flight (e.g. Delta status `Landed`), discard
//!   subsequent events of another type for that flight (e.g. FAA positions);
//! * **complex tuples** (`set_complex_tuple`) — once all of a set of status
//!   values has been observed for a flight (`Landed`, `AtRunway`, `AtGate`),
//!   emit a single derived event (`Arrived`) standing in for them.
//!
//! Rules are evaluated on the *receive path* against the [`StatusTable`].
//! A rule can suppress an event's **mirror** copy while leaving its
//! **forward** copy (to the local main unit) intact: selective mirroring
//! trades the consistency of mirrored state for reduced traffic, but the
//! central site's own Event Derivation Engine continues to see the full
//! stream and to serve regular clients losslessly.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventBody, EventType, FlightStatus, PositionFix};
use crate::status::StatusTable;

/// Content predicate usable in a [`Rule::Filter`]. Kept as a closed enum so
/// rules stay `Clone + Debug` and can cross the control channel; arbitrary
/// user code instead plugs in via [`crate::mirrorfn::MirrorFn`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContentPredicate {
    /// Matches every event of the rule's type.
    Always,
    /// Matches events whose status value equals the given one.
    StatusEquals(FlightStatus),
    /// Matches position events below the given altitude (feet) — the
    /// paper's inclement-weather scenario tracks low flights more closely.
    AltitudeBelow(f64),
    /// Matches position events at or above the given altitude.
    AltitudeAtLeast(f64),
}

impl ContentPredicate {
    /// Evaluate against an event.
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            ContentPredicate::Always => true,
            ContentPredicate::StatusEquals(s) => event.status_value() == Some(*s),
            ContentPredicate::AltitudeBelow(a) => match &event.body {
                EventBody::Position(p) => p.alt_ft < *a,
                EventBody::Coalesced { last, .. } => last.alt_ft < *a,
                _ => false,
            },
            ContentPredicate::AltitudeAtLeast(a) => match &event.body {
                EventBody::Position(p) => p.alt_ft >= *a,
                EventBody::Coalesced { last, .. } => last.alt_ft >= *a,
                _ => false,
            },
        }
    }
}

/// One semantic mirroring rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// Do not mirror events of `ty` whose content matches `pred`.
    Filter {
        /// Event type the filter applies to.
        ty: EventType,
        /// Content predicate selecting the events to drop from mirroring.
        pred: ContentPredicate,
    },
    /// `set_overwrite(t, l)`: allow overwriting of events of `ty` with a
    /// maximum sequence length of `max_len` — mirror one, discard the next
    /// `max_len - 1` per flight.
    Overwrite {
        /// Event type subject to overwriting.
        ty: EventType,
        /// Maximum overwrite run length (`l` in the paper; ≤ 1 disables).
        max_len: u32,
    },
    /// `set_complex_seq(t1, value, t2)`: discard events of `discard_ty`
    /// for a flight after an event of `trigger_ty` with status
    /// `trigger_value` has been seen for it.
    ComplexSeq {
        /// Type of the trigger event (`t1`).
        trigger_ty: EventType,
        /// Status value that arms the trigger.
        trigger_value: FlightStatus,
        /// Type whose later events are discarded (`t2`).
        discard_ty: EventType,
    },
    /// `set_complex_tuple(t*, values, n)`: when all `parts` statuses have
    /// been observed for a flight, emit one derived event with status
    /// `emit` in place of the last constituent.
    ComplexTuple {
        /// Constituent status values to collect.
        parts: Vec<FlightStatus>,
        /// Status of the emitted combined event.
        emit: FlightStatus,
    },
}

/// Result of evaluating the rule set against one incoming event.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// Copy to forward to the local main unit (regular-client path);
    /// `None` only if a rule drops the event entirely.
    pub forward: Option<Event>,
    /// Copy to place on the ready queue for mirroring; `None` when
    /// selective rules suppress it.
    pub mirror: Option<Event>,
    /// Additional derived events produced by tuple rules; these go to both
    /// paths (they are new application-level facts).
    pub derived: Vec<Event>,
}

impl RuleOutcome {
    fn passthrough(event: Event) -> Self {
        RuleOutcome { forward: Some(event.clone()), mirror: Some(event), derived: Vec::new() }
    }
}

/// An ordered collection of semantic rules plus evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
    /// Events whose mirror copy was suppressed.
    #[serde(default)]
    pub suppressed: u64,
    /// Derived events emitted by tuple rules.
    #[serde(default)]
    pub emitted: u64,
}

impl RuleSet {
    /// An empty rule set (default mirroring: everything is mirrored).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule; rules are evaluated in insertion order.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, rule: Rule) -> Self {
        self.push(rule);
        self
    }

    /// Remove all rules of the same variant-and-type as `rule` then insert
    /// `rule` (the Table-1 setters replace previous settings).
    pub fn replace(&mut self, rule: Rule) {
        self.rules.retain(|r| !same_slot(r, &rule));
        self.rules.push(rule);
    }

    /// The rules currently installed.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// True if no semantic rules are installed (pure default mirroring).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate the rule set against one incoming event.
    ///
    /// `table.observe(event)` must have been called by the receive path
    /// *before* evaluation (the receiving task records history first, then
    /// filters — the paper's status-table discipline).
    pub fn evaluate(&mut self, event: Event, table: &mut StatusTable) -> RuleOutcome {
        let mut out = RuleOutcome::passthrough(event);
        for rule in &self.rules {
            // Once the mirror copy is suppressed, later rules cannot
            // resurrect it, but tuple rules may still emit derived events.
            match rule {
                Rule::Filter { ty, pred } => {
                    if let Some(ev) = &out.mirror {
                        if ev.event_type() == *ty && pred.matches(ev) {
                            out.mirror = None;
                            self.suppressed += 1;
                        }
                    }
                }
                Rule::Overwrite { ty, max_len } => {
                    if let Some(ev) = &out.mirror {
                        if ev.event_type() == *ty
                            && !table.overwrite_admits(ev.flight, *ty, *max_len)
                        {
                            out.mirror = None;
                            self.suppressed += 1;
                        }
                    }
                }
                Rule::ComplexSeq { trigger_ty, trigger_value, discard_ty } => {
                    let (flight, ty, status) = match &out.forward {
                        Some(ev) => (ev.flight, ev.event_type(), ev.status_value()),
                        None => continue,
                    };
                    if ty == *trigger_ty && status == Some(*trigger_value) {
                        table.set_seq_trigger(flight, *discard_ty, true);
                    }
                    if let Some(ev) = &out.mirror {
                        if ev.event_type() == *discard_ty
                            && table.seq_trigger_armed(ev.flight, *discard_ty)
                        {
                            table.record_discard(ev.flight);
                            out.mirror = None;
                            self.suppressed += 1;
                        }
                    }
                }
                Rule::ComplexTuple { parts, emit } => {
                    let ev = match &out.forward {
                        Some(ev) => ev,
                        None => continue,
                    };
                    // Only status-bearing events can complete a tuple, and
                    // only when this event contributes the last missing part.
                    let this_status = match ev.status_value() {
                        Some(s) => s,
                        None => continue,
                    };
                    if !parts.contains(&this_status) {
                        continue;
                    }
                    let all_seen = parts.iter().all(|p| table.has_seen_status(ev.flight, *p));
                    let already_emitted = table.has_seen_status(ev.flight, *emit);
                    if all_seen && !already_emitted {
                        let mut derived = Event::new(
                            ev.stream,
                            ev.seq,
                            ev.flight,
                            EventBody::Derived { status: *emit, collapsed: parts.len() as u32 },
                        );
                        derived.stamp = ev.stamp.clone();
                        derived.ingress_us = ev.ingress_us;
                        table.observe(&derived);
                        out.derived.push(derived);
                        self.emitted += 1;
                        // The combined event replaces the constituent on the
                        // mirror path.
                        if out.mirror.as_ref().map(|m| m.seq) == Some(ev.seq) {
                            out.mirror = None;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Do two rules occupy the same "slot" for [`RuleSet::replace`] purposes?
fn same_slot(a: &Rule, b: &Rule) -> bool {
    match (a, b) {
        (Rule::Filter { ty: t1, .. }, Rule::Filter { ty: t2, .. }) => t1 == t2,
        (Rule::Overwrite { ty: t1, .. }, Rule::Overwrite { ty: t2, .. }) => t1 == t2,
        (Rule::ComplexSeq { discard_ty: d1, .. }, Rule::ComplexSeq { discard_ty: d2, .. }) => {
            d1 == d2
        }
        (Rule::ComplexTuple { emit: e1, .. }, Rule::ComplexTuple { emit: e2, .. }) => e1 == e2,
        _ => false,
    }
}

/// Coalesce a drained run of ready-queue events into fewer mirror events
/// (send-path transformation used by coalescing mirror functions).
///
/// Position events for the same flight collapse into one
/// [`EventBody::Coalesced`] carrying the most recent fix and the run count
/// (at most `max` originals per coalesced event — `set_params`' "maximum
/// number of events that can be coalesced"); all other events pass through
/// unchanged, in order. A `max` of 0 is treated as unbounded.
pub fn coalesce_run(events: Vec<Event>, max: u32) -> Vec<Event> {
    let cap = if max == 0 { u32::MAX } else { max };
    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    // Index into `out` of the open coalesced-position event per flight.
    let mut open: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for ev in events {
        let fix: Option<PositionFix> = match &ev.body {
            EventBody::Position(p) => Some(*p),
            _ => None,
        };
        match fix {
            Some(p) => {
                let folded = if let Some(&idx) = open.get(&ev.flight) {
                    // Fold into the open coalesced event for this flight,
                    // unless it is already at capacity.
                    let slot = &mut out[idx];
                    let has_room = matches!(&slot.body,
                        EventBody::Coalesced { count, .. } if *count < cap);
                    if has_room {
                        if let EventBody::Coalesced { last, count } = &mut slot.body {
                            *last = p;
                            *count += 1;
                        }
                        slot.stamp.merge(&ev.stamp);
                        slot.seq = ev.seq;
                        // Earliest ingress time is retained so the
                        // update-delay metric reflects the oldest folded-in
                        // event.
                        slot.ingress_us = slot.ingress_us.min(ev.ingress_us);
                        slot.padding = slot.padding.max(ev.padding);
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if !folded {
                    let mut c = ev.clone();
                    c.body = EventBody::Coalesced { last: p, count: 1 };
                    open.insert(ev.flight, out.len());
                    out.push(c);
                }
            }
            None => {
                // A non-position event closes open runs for its flight so
                // ordering with status changes is preserved.
                open.remove(&ev.flight);
                out.push(ev);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FlightStatus, PositionFix};

    fn fix(alt: f64) -> PositionFix {
        PositionFix { lat: 1.0, lon: 2.0, alt_ft: alt, speed_kts: 400.0, heading_deg: 90.0 }
    }

    fn pos(seq: u64, flight: u32) -> Event {
        Event::faa_position(seq, flight, fix(30000.0))
    }

    fn eval(rs: &mut RuleSet, t: &mut StatusTable, e: Event) -> RuleOutcome {
        t.observe(&e);
        rs.evaluate(e, t)
    }

    #[test]
    fn empty_ruleset_passes_everything_through() {
        let mut rs = RuleSet::new();
        let mut t = StatusTable::new();
        let out = eval(&mut rs, &mut t, pos(1, 10));
        assert!(out.forward.is_some());
        assert!(out.mirror.is_some());
        assert!(out.derived.is_empty());
    }

    #[test]
    fn filter_suppresses_mirror_but_not_forward() {
        let mut rs = RuleSet::new()
            .with(Rule::Filter { ty: EventType::FaaPosition, pred: ContentPredicate::Always });
        let mut t = StatusTable::new();
        let out = eval(&mut rs, &mut t, pos(1, 10));
        assert!(out.forward.is_some());
        assert!(out.mirror.is_none());
        assert_eq!(rs.suppressed, 1);
    }

    #[test]
    fn altitude_filter_is_content_sensitive() {
        let mut rs = RuleSet::new().with(Rule::Filter {
            ty: EventType::FaaPosition,
            pred: ContentPredicate::AltitudeAtLeast(10000.0),
        });
        let mut t = StatusTable::new();
        // High flight: filtered from mirroring.
        let out = eval(&mut rs, &mut t, Event::faa_position(1, 10, fix(30000.0)));
        assert!(out.mirror.is_none());
        // Low flight (approach): mirrored.
        let out = eval(&mut rs, &mut t, Event::faa_position(2, 10, fix(2000.0)));
        assert!(out.mirror.is_some());
    }

    #[test]
    fn overwrite_mirrors_one_in_max_len_per_flight() {
        let mut rs =
            RuleSet::new().with(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 10 });
        let mut t = StatusTable::new();
        let mut mirrored = 0;
        for seq in 1..=100 {
            let out = eval(&mut rs, &mut t, pos(seq, 7));
            assert!(out.forward.is_some(), "forward path must stay lossless");
            if out.mirror.is_some() {
                mirrored += 1;
            }
        }
        assert!((10..=11).contains(&mirrored), "mirrored {mirrored} of 100");
    }

    #[test]
    fn complex_seq_discards_positions_after_landing() {
        let mut rs = RuleSet::new().with(Rule::ComplexSeq {
            trigger_ty: EventType::DeltaStatus,
            trigger_value: FlightStatus::Landed,
            discard_ty: EventType::FaaPosition,
        });
        let mut t = StatusTable::new();
        // Before landing: positions mirrored.
        assert!(eval(&mut rs, &mut t, pos(1, 5)).mirror.is_some());
        // The landing event itself is mirrored (it's the trigger, not the target).
        let landed = Event::delta_status(1, 5, FlightStatus::Landed);
        assert!(eval(&mut rs, &mut t, landed).mirror.is_some());
        // After landing: positions for flight 5 discarded…
        assert!(eval(&mut rs, &mut t, pos(2, 5)).mirror.is_none());
        // …but other flights unaffected.
        assert!(eval(&mut rs, &mut t, pos(3, 6)).mirror.is_some());
    }

    #[test]
    fn complex_tuple_emits_one_arrived_event() {
        let mut rs = RuleSet::new().with(Rule::ComplexTuple {
            parts: vec![FlightStatus::Landed, FlightStatus::AtRunway, FlightStatus::AtGate],
            emit: FlightStatus::Arrived,
        });
        let mut t = StatusTable::new();
        let out = eval(&mut rs, &mut t, Event::delta_status(1, 9, FlightStatus::Landed));
        assert!(out.derived.is_empty());
        let out = eval(&mut rs, &mut t, Event::delta_status(2, 9, FlightStatus::AtRunway));
        assert!(out.derived.is_empty());
        let out = eval(&mut rs, &mut t, Event::delta_status(3, 9, FlightStatus::AtGate));
        assert_eq!(out.derived.len(), 1);
        assert_eq!(out.derived[0].status_value(), Some(FlightStatus::Arrived));
        // The completing constituent is replaced on the mirror path.
        assert!(out.mirror.is_none());
        // A repeated constituent does not re-emit.
        let out = eval(&mut rs, &mut t, Event::delta_status(4, 9, FlightStatus::AtGate));
        assert!(out.derived.is_empty());
        assert_eq!(rs.emitted, 1);
    }

    #[test]
    fn tuple_plus_seq_compose_into_arrival_cleanup() {
        // The paper's example: once `Arrived` exists, all positions for the
        // flight can be discarded.
        let mut rs = RuleSet::new()
            .with(Rule::ComplexTuple {
                parts: vec![FlightStatus::Landed, FlightStatus::AtGate],
                emit: FlightStatus::Arrived,
            })
            .with(Rule::ComplexSeq {
                trigger_ty: EventType::Derived,
                trigger_value: FlightStatus::Arrived,
                discard_ty: EventType::FaaPosition,
            });
        let mut t = StatusTable::new();
        eval(&mut rs, &mut t, Event::delta_status(1, 3, FlightStatus::Landed));
        let out = eval(&mut rs, &mut t, Event::delta_status(2, 3, FlightStatus::AtGate));
        assert_eq!(out.derived.len(), 1);
        // Feed the derived event back through (as the aux unit does).
        let derived = out.derived[0].clone();
        let out2 = rs.evaluate(derived, &mut t);
        assert!(out2.forward.is_some());
        // Positions for flight 3 are now discarded.
        assert!(eval(&mut rs, &mut t, pos(9, 3)).mirror.is_none());
    }

    #[test]
    fn replace_swaps_same_slot_rule() {
        let mut rs =
            RuleSet::new().with(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 10 });
        rs.replace(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 20 });
        assert_eq!(rs.rules().len(), 1);
        assert_eq!(rs.rules()[0], Rule::Overwrite { ty: EventType::FaaPosition, max_len: 20 });
        // Different slot appends.
        rs.replace(Rule::Overwrite { ty: EventType::DeltaStatus, max_len: 5 });
        assert_eq!(rs.rules().len(), 2);
    }

    #[test]
    fn coalesce_folds_same_flight_positions() {
        let run = vec![pos(1, 1), pos(2, 1), pos(3, 2), pos(4, 1)];
        let out = coalesce_run(run, 0);
        // flight 1 run of (1,2) + flight 2 + flight 1 continues (4 folds in
        // since no interleaving non-position event closed it).
        assert_eq!(out.len(), 2);
        match &out[0].body {
            EventBody::Coalesced { count, .. } => assert_eq!(*count, 3),
            b => panic!("expected coalesced, got {b:?}"),
        }
        match &out[1].body {
            EventBody::Coalesced { count, .. } => assert_eq!(*count, 1),
            b => panic!("expected coalesced, got {b:?}"),
        }
    }

    #[test]
    fn coalesce_preserves_status_ordering() {
        let run = vec![pos(1, 1), Event::delta_status(1, 1, FlightStatus::Landed), pos(2, 1)];
        let out = coalesce_run(run, 0);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0].body, EventBody::Coalesced { count: 1, .. }));
        assert!(matches!(out[1].body, EventBody::Status(FlightStatus::Landed)));
        assert!(matches!(out[2].body, EventBody::Coalesced { count: 1, .. }));
    }

    #[test]
    fn coalesce_respects_cap() {
        let run: Vec<Event> = (1..=7).map(|s| pos(s, 1)).collect();
        let out = coalesce_run(run, 3);
        // 7 events, cap 3 → runs of 3, 3, 1.
        let counts: Vec<u32> = out
            .iter()
            .map(|e| match &e.body {
                EventBody::Coalesced { count, .. } => *count,
                b => panic!("expected coalesced, got {b:?}"),
            })
            .collect();
        assert_eq!(counts, vec![3, 3, 1]);
    }

    #[test]
    fn coalesce_keeps_earliest_ingress_and_latest_fix() {
        let mut a = Event::faa_position(1, 1, fix(10000.0)).with_ingress_us(100);
        let mut b = Event::faa_position(2, 1, fix(20000.0)).with_ingress_us(50);
        a.stamp.advance(0, 1);
        b.stamp.advance(0, 2);
        let out = coalesce_run(vec![a, b], 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ingress_us, 50);
        match &out[0].body {
            EventBody::Coalesced { last, count } => {
                assert_eq!(*count, 2);
                assert_eq!(last.alt_ft, 20000.0);
            }
            b => panic!("expected coalesced, got {b:?}"),
        }
        assert_eq!(out[0].stamp.get(0), 2);
    }
}
