//! Adaptive mirroring.
//!
//! §3.2.2: mirroring is adapted at runtime to system conditions. Monitored
//! variables — the lengths of the ready and backup queues at each site and
//! the size of the application-level buffer of pending client requests —
//! each carry a **primary** and a **secondary** threshold set through
//! `set_monitor_values()`. Reaching the primary threshold triggers a
//! modification of the mirroring algorithm; the modification stays in force
//! until the monitored value falls below *(primary − secondary)*, giving
//! hysteresis so the system does not flap at the threshold.
//!
//! Decisions are made **centrally** so all mirrors adapt identically, and
//! both the monitored values (mirror → central) and the resulting
//! directives (central → mirrors) are piggybacked on checkpoint control
//! messages rather than generating separate adaptation traffic.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::control::{AdaptDirective, SiteId};
use crate::mirrorfn::MirrorFnKind;
use crate::params::{MirrorParams, ParamId};

/// Which runtime quantity a threshold watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorKind {
    /// Length of a site's ready queue.
    ReadyQueueLen,
    /// Length of a site's backup queue.
    BackupQueueLen,
    /// Size of the application-level buffer of pending client requests.
    PendingRequests,
}

impl MonitorKind {
    /// All monitor kinds.
    pub const ALL: [MonitorKind; 3] =
        [MonitorKind::ReadyQueueLen, MonitorKind::BackupQueueLen, MonitorKind::PendingRequests];
}

/// A snapshot of one site's monitored variables, piggybacked on checkpoint
/// replies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Ready-queue length.
    pub ready_len: u64,
    /// Backup-queue length.
    pub backup_len: u64,
    /// Pending client requests buffered at the site.
    pub pending_requests: u64,
}

impl MonitorReport {
    /// Value of the given monitored variable.
    pub fn value(&self, kind: MonitorKind) -> u64 {
        match kind {
            MonitorKind::ReadyQueueLen => self.ready_len,
            MonitorKind::BackupQueueLen => self.backup_len,
            MonitorKind::PendingRequests => self.pending_requests,
        }
    }

    /// Componentwise maximum — the aggregation the controller applies
    /// across sites (the hottest site drives adaptation).
    pub fn max(&self, other: &MonitorReport) -> MonitorReport {
        MonitorReport {
            ready_len: self.ready_len.max(other.ready_len),
            backup_len: self.backup_len.max(other.backup_len),
            pending_requests: self.pending_requests.max(other.pending_requests),
        }
    }
}

/// Primary/secondary thresholds for one monitored variable
/// (`set_monitor_values(index, p, s)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorThresholds {
    /// Crossing this value (≥) engages the adaptation.
    pub primary: u64,
    /// The adaptation disengages when the value falls below
    /// `primary - secondary`.
    pub secondary: u64,
}

impl MonitorThresholds {
    /// Construct, saturating so the release point never underflows.
    pub fn new(primary: u64, secondary: u64) -> Self {
        MonitorThresholds { primary, secondary }
    }

    /// The value below which an engaged adaptation is released.
    pub fn release_point(&self) -> u64 {
        self.primary.saturating_sub(self.secondary)
    }
}

/// What the adaptation does once a threshold is crossed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdaptAction {
    /// Switch to a different named mirroring function while engaged,
    /// restoring the normal one on release (§4.3's two-profile policy).
    SwitchMirrorFn {
        /// Configuration used under normal conditions.
        normal: MirrorFnKind,
        /// Configuration used while the threshold is exceeded.
        engaged: MirrorFnKind,
    },
    /// Adjust a parameter by a percentage while engaged
    /// (`set_adapt(p_id, p)`), undoing the adjustment on release.
    AdjustParam {
        /// Which parameter to modify.
        id: ParamId,
        /// Percentage change applied on engage (e.g. `100` doubles,
        /// `-50` halves).
        percent: i32,
    },
}

/// Elastic-capacity policy: the same §3.2.2 hysteresis machinery, but the
/// adaptation target is the **mirror set itself** rather than the
/// mirroring function.
///
/// The controller watches the aggregated `PendingRequests` monitor (the
/// paper's bursty-request signal): sustained pressure at or above
/// `thresholds.primary` for `sustain` consecutive checkpoint rounds directs
/// *spawn a mirror*; sustained calm below the release point
/// (`primary − secondary`) directs *retire one*. Like every other
/// adaptation, the decision is made centrally, once per checkpoint round —
/// the embedding (e.g. `mirror-runtime`'s `Cluster`) executes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalePolicy {
    /// Primary/secondary thresholds on the aggregated pending-request
    /// gauge (hysteresis exactly as for mirror-function adaptation).
    pub thresholds: MonitorThresholds,
    /// Consecutive rounds the signal must hold before a decision fires
    /// (spawning a site is costlier than swapping a mirror function, so a
    /// single-round spike should not trigger it).
    pub sustain: u32,
    /// Rounds to hold *all* scale decisions after one fires, giving a
    /// freshly spawned (or retired) mirror time to change the signal.
    pub cooldown: u32,
    /// Never scale out beyond this many live mirrors.
    pub max_mirrors: usize,
    /// Never scale in below this many live mirrors.
    pub min_mirrors: usize,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            thresholds: MonitorThresholds::new(64, 32),
            sustain: 2,
            cooldown: 8,
            max_mirrors: 4,
            min_mirrors: 1,
        }
    }
}

/// A capacity decision produced by [`AdaptationController::decide_scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Spawn one additional mirror site.
    SpawnMirror,
    /// Retire one mirror site.
    RetireMirror,
}

/// Outcome of feeding monitor reports to the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptDecision {
    /// No change this round.
    Hold,
    /// Thresholds crossed: switch to the engaged configuration.
    Engage(AdaptDirective),
    /// Load receded: restore the normal configuration.
    Release(AdaptDirective),
}

/// The central adaptation controller.
///
/// Collects per-site [`MonitorReport`]s each checkpoint round, aggregates
/// them (max across sites), and applies the hysteresis rule to decide
/// whether to ship a new [`AdaptDirective`] with the round's `COMMIT`.
#[derive(Debug)]
pub struct AdaptationController {
    thresholds: HashMap<MonitorKind, MonitorThresholds>,
    action: Option<AdaptAction>,
    baseline: MirrorParams,
    engaged: bool,
    reports: HashMap<SiteId, MonitorReport>,
    /// Engage/release transitions taken (for experiment output).
    pub transitions: u64,
    /// Elastic-capacity policy, if installed.
    scale: Option<ScalePolicy>,
    /// Consecutive rounds the pending signal has held over primary.
    scale_over: u32,
    /// Consecutive rounds the pending signal has held under the release
    /// point.
    scale_under: u32,
    /// Rounds left before another scale decision may fire.
    scale_cooldown: u32,
    /// Scale decisions taken (for experiment output).
    pub scale_decisions: u64,
}

impl AdaptationController {
    /// A controller with no thresholds (never adapts) around the given
    /// baseline parameters.
    pub fn new(baseline: MirrorParams) -> Self {
        AdaptationController {
            thresholds: HashMap::new(),
            action: None,
            baseline,
            engaged: false,
            reports: HashMap::new(),
            transitions: 0,
            scale: None,
            scale_over: 0,
            scale_under: 0,
            scale_cooldown: 0,
            scale_decisions: 0,
        }
    }

    /// Install (or replace) the elastic-capacity policy.
    pub fn set_scale_policy(&mut self, policy: ScalePolicy) {
        self.scale = Some(policy);
        self.scale_over = 0;
        self.scale_under = 0;
        self.scale_cooldown = 0;
    }

    /// The installed elastic-capacity policy, if any.
    pub fn scale_policy(&self) -> Option<&ScalePolicy> {
        self.scale.as_ref()
    }

    /// Evaluate the elastic-capacity rule against the latest reports.
    /// Called once per checkpoint round alongside [`decide`](Self::decide);
    /// `live_mirrors` is the current live mirror count (used for the
    /// min/max bounds).
    pub fn decide_scale(&mut self, live_mirrors: usize) -> Option<ScaleDecision> {
        let policy = self.scale?;
        let pending = self.aggregate().pending_requests;
        if pending >= policy.thresholds.primary {
            self.scale_over += 1;
            self.scale_under = 0;
        } else if pending < policy.thresholds.release_point() {
            self.scale_under += 1;
            self.scale_over = 0;
        } else {
            // Inside the hysteresis band: both streaks reset, so a
            // wobbling signal never accumulates toward a decision.
            self.scale_over = 0;
            self.scale_under = 0;
        }
        if self.scale_cooldown > 0 {
            self.scale_cooldown -= 1;
            return None;
        }
        if self.scale_over >= policy.sustain && live_mirrors < policy.max_mirrors {
            self.scale_over = 0;
            self.scale_cooldown = policy.cooldown;
            self.scale_decisions += 1;
            return Some(ScaleDecision::SpawnMirror);
        }
        if self.scale_under >= policy.sustain && live_mirrors > policy.min_mirrors {
            self.scale_under = 0;
            self.scale_cooldown = policy.cooldown;
            self.scale_decisions += 1;
            return Some(ScaleDecision::RetireMirror);
        }
        None
    }

    /// `set_monitor_values(index, p, s)`: install thresholds for a
    /// monitored variable.
    pub fn set_monitor_values(&mut self, kind: MonitorKind, thresholds: MonitorThresholds) {
        self.thresholds.insert(kind, thresholds);
    }

    /// `set_adapt(...)`: install the action taken when thresholds are
    /// crossed.
    pub fn set_action(&mut self, action: AdaptAction) {
        self.action = Some(action);
    }

    /// Update the baseline ("normal") parameter set — e.g. after an
    /// explicit `set_params` by the application.
    pub fn set_baseline(&mut self, params: MirrorParams) {
        self.baseline = params;
    }

    /// Is the degraded configuration currently in force?
    pub fn is_engaged(&self) -> bool {
        self.engaged
    }

    /// Record a site's monitor report (from a `ChkptRep`, or locally at the
    /// central site).
    pub fn record_report(&mut self, site: SiteId, report: MonitorReport) {
        self.reports.insert(site, report);
    }

    /// Drop a site's report (the site failed or was retired): stale
    /// pressure readings from a dead mirror must not drive adaptation.
    pub fn remove_report(&mut self, site: SiteId) {
        self.reports.remove(&site);
    }

    /// Aggregate of the latest reports (max across sites).
    pub fn aggregate(&self) -> MonitorReport {
        self.reports.values().fold(MonitorReport::default(), |acc, r| acc.max(r))
    }

    /// Evaluate the hysteresis rule against the latest reports. Called once
    /// per checkpoint round, just before the `COMMIT` is formed.
    pub fn decide(&mut self) -> AdaptDecision {
        let action = match &self.action {
            Some(a) => a.clone(),
            None => return AdaptDecision::Hold,
        };
        if self.thresholds.is_empty() {
            return AdaptDecision::Hold;
        }
        let agg = self.aggregate();
        let any_over_primary =
            self.thresholds.iter().any(|(kind, th)| agg.value(*kind) >= th.primary);
        let all_below_release =
            self.thresholds.iter().all(|(kind, th)| agg.value(*kind) < th.release_point());

        if !self.engaged && any_over_primary {
            self.engaged = true;
            self.transitions += 1;
            AdaptDecision::Engage(self.directive(&action, true))
        } else if self.engaged && all_below_release {
            self.engaged = false;
            self.transitions += 1;
            AdaptDecision::Release(self.directive(&action, false))
        } else {
            AdaptDecision::Hold
        }
    }

    /// Build the directive for the engaged or normal configuration.
    fn directive(&mut self, action: &AdaptAction, engage: bool) -> AdaptDirective {
        match action {
            AdaptAction::SwitchMirrorFn { normal, engaged } => {
                let kind = if engage { *engaged } else { *normal };
                let mut params = kind.params(&self.baseline);
                self.baseline.generation += 1;
                params.generation = self.baseline.generation;
                AdaptDirective { params, mirror_fn: Some(kind), partition: None }
            }
            AdaptAction::AdjustParam { id, percent } => {
                let mut params = self.baseline.clone();
                if engage {
                    params.adjust_percent(*id, *percent);
                } else {
                    params.touch();
                }
                self.baseline.generation = params.generation;
                AdaptDirective { params, mirror_fn: None, partition: None }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller_with_switch() -> AdaptationController {
        let mut c = AdaptationController::new(MirrorParams::profile_normal());
        c.set_monitor_values(MonitorKind::PendingRequests, MonitorThresholds::new(100, 60));
        c.set_action(AdaptAction::SwitchMirrorFn {
            normal: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
            engaged: MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 },
        });
        c
    }

    fn report(pending: u64) -> MonitorReport {
        MonitorReport { ready_len: 0, backup_len: 0, pending_requests: pending }
    }

    #[test]
    fn no_action_means_hold() {
        let mut c = AdaptationController::new(MirrorParams::default());
        c.record_report(1, report(10_000));
        assert_eq!(c.decide(), AdaptDecision::Hold);
    }

    #[test]
    fn engages_at_primary_threshold() {
        let mut c = controller_with_switch();
        c.record_report(1, report(99));
        assert_eq!(c.decide(), AdaptDecision::Hold);
        c.record_report(1, report(100));
        match c.decide() {
            AdaptDecision::Engage(d) => {
                assert_eq!(d.params.coalesce_max, 20);
                assert_eq!(d.params.checkpoint_every, 100);
                assert_eq!(
                    d.mirror_fn,
                    Some(MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 })
                );
            }
            other => panic!("expected Engage, got {other:?}"),
        }
        assert!(c.is_engaged());
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut c = controller_with_switch();
        c.record_report(1, report(150));
        assert!(matches!(c.decide(), AdaptDecision::Engage(_)));
        // Dropping below primary but above release (100-60=40) holds.
        c.record_report(1, report(60));
        assert_eq!(c.decide(), AdaptDecision::Hold);
        assert!(c.is_engaged());
        // Dropping below the release point disengages.
        c.record_report(1, report(39));
        match c.decide() {
            AdaptDecision::Release(d) => {
                assert_eq!(d.params.coalesce_max, 10);
                assert_eq!(d.params.checkpoint_every, 50);
            }
            other => panic!("expected Release, got {other:?}"),
        }
        assert!(!c.is_engaged());
        assert_eq!(c.transitions, 2);
    }

    #[test]
    fn aggregates_max_across_sites() {
        let mut c = controller_with_switch();
        c.record_report(1, report(10));
        c.record_report(2, report(500));
        c.record_report(3, report(0));
        assert_eq!(c.aggregate().pending_requests, 500);
        assert!(matches!(c.decide(), AdaptDecision::Engage(_)));
    }

    #[test]
    fn generations_increase_monotonically() {
        let mut c = controller_with_switch();
        c.record_report(1, report(200));
        let g1 = match c.decide() {
            AdaptDecision::Engage(d) => d.params.generation,
            other => panic!("{other:?}"),
        };
        c.record_report(1, report(0));
        let g2 = match c.decide() {
            AdaptDecision::Release(d) => d.params.generation,
            other => panic!("{other:?}"),
        };
        assert!(g2 > g1);
    }

    #[test]
    fn adjust_param_action_halves_checkpoint_frequency() {
        let mut c = AdaptationController::new(MirrorParams::default());
        c.set_monitor_values(MonitorKind::ReadyQueueLen, MonitorThresholds::new(50, 25));
        c.set_action(AdaptAction::AdjustParam { id: ParamId::CheckpointEvery, percent: 100 });
        c.record_report(1, MonitorReport { ready_len: 80, ..Default::default() });
        match c.decide() {
            // Doubling events-between-checkpoints halves the frequency.
            AdaptDecision::Engage(d) => assert_eq!(d.params.checkpoint_every, 100),
            other => panic!("{other:?}"),
        }
        c.record_report(1, MonitorReport { ready_len: 0, ..Default::default() });
        match c.decide() {
            AdaptDecision::Release(d) => assert_eq!(d.params.checkpoint_every, 50),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn thresholds_release_point_saturates() {
        let t = MonitorThresholds::new(10, 30);
        assert_eq!(t.release_point(), 0);
    }

    fn controller_with_scale(sustain: u32, cooldown: u32) -> AdaptationController {
        let mut c = AdaptationController::new(MirrorParams::default());
        c.set_scale_policy(ScalePolicy {
            thresholds: MonitorThresholds::new(10, 6),
            sustain,
            cooldown,
            max_mirrors: 3,
            min_mirrors: 1,
        });
        c
    }

    #[test]
    fn scale_out_requires_sustained_pressure() {
        let mut c = controller_with_scale(2, 0);
        c.record_report(1, report(50));
        assert_eq!(c.decide_scale(1), None, "one hot round is not sustained");
        assert_eq!(c.decide_scale(1), Some(ScaleDecision::SpawnMirror));
        assert_eq!(c.scale_decisions, 1);
    }

    #[test]
    fn spike_then_dip_resets_the_streak() {
        let mut c = controller_with_scale(2, 0);
        c.record_report(1, report(50));
        assert_eq!(c.decide_scale(1), None);
        // Signal falls inside the hysteresis band (release 4 ≤ 7 < 10):
        // the over-streak resets and no decision ever fires.
        c.record_report(1, report(7));
        assert_eq!(c.decide_scale(1), None);
        c.record_report(1, report(50));
        assert_eq!(c.decide_scale(1), None, "streak restarted from zero");
    }

    #[test]
    fn scale_in_on_sustained_quiesce_with_floor() {
        let mut c = controller_with_scale(2, 0);
        c.record_report(1, report(0));
        assert_eq!(c.decide_scale(2), None);
        assert_eq!(c.decide_scale(2), Some(ScaleDecision::RetireMirror));
        // At the min_mirrors floor the calm signal never retires further.
        assert_eq!(c.decide_scale(1), None);
        assert_eq!(c.decide_scale(1), None);
    }

    #[test]
    fn max_mirrors_caps_scale_out() {
        let mut c = controller_with_scale(1, 0);
        c.record_report(1, report(100));
        assert_eq!(c.decide_scale(3), None, "already at max_mirrors");
    }

    #[test]
    fn cooldown_spaces_decisions() {
        let mut c = controller_with_scale(1, 2);
        c.record_report(1, report(100));
        assert_eq!(c.decide_scale(1), Some(ScaleDecision::SpawnMirror));
        assert_eq!(c.decide_scale(2), None, "cooldown round 1");
        assert_eq!(c.decide_scale(2), None, "cooldown round 2");
        assert_eq!(c.decide_scale(2), Some(ScaleDecision::SpawnMirror));
    }

    #[test]
    fn scale_and_mirror_fn_adaptation_are_independent() {
        let mut c = controller_with_switch();
        c.set_scale_policy(ScalePolicy {
            thresholds: MonitorThresholds::new(10, 6),
            sustain: 1,
            cooldown: 0,
            max_mirrors: 4,
            min_mirrors: 1,
        });
        c.record_report(1, report(150));
        assert!(matches!(c.decide(), AdaptDecision::Engage(_)));
        assert_eq!(c.decide_scale(1), Some(ScaleDecision::SpawnMirror));
    }
}
