//! The auxiliary unit's shared data queues.
//!
//! The paper's auxiliary unit synchronizes its three tasks through two
//! queues (§3.1): the **ready queue**, into which the receiving task places
//! stamped (and rule-filtered) events and from which the sending task
//! drains, and the **backup queue**, where sent events are retained until a
//! checkpoint commits past them. Queue lengths are the monitored variables
//! driving adaptive mirroring, so both queues keep occupancy statistics.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::event::Event;
use crate::timestamp::VectorTimestamp;

/// Occupancy statistics for a queue; sampled by the adaptation monitors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever enqueued.
    pub enqueued: u64,
    /// Total events ever dequeued/pruned.
    pub dequeued: u64,
    /// Largest length observed.
    pub high_watermark: usize,
}

/// FIFO of stamped events awaiting the sending task.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    q: VecDeque<Event>,
    stats: QueueStats,
}

impl ReadyQueue {
    /// An empty ready queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: Event) {
        self.q.push_back(e);
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.q.len());
    }

    /// Remove the oldest event.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.q.pop_front();
        if e.is_some() {
            self.stats.dequeued += 1;
        }
        e
    }

    /// Peek at the oldest event without removing it.
    pub fn front(&self) -> Option<&Event> {
        self.q.front()
    }

    /// Current length — a monitored variable for adaptation.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Iterate pending events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.q.iter()
    }

    /// Drain up to `n` oldest events (used by coalescing mirror functions,
    /// which combine a run of pending events into one mirror event).
    pub fn drain_up_to(&mut self, n: usize) -> Vec<Event> {
        let take = n.min(self.q.len());
        self.stats.dequeued += take as u64;
        self.q.drain(..take).collect()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Events already mirrored but not yet covered by a committed checkpoint.
///
/// On commit, every event whose stamp is dominated by the committed
/// timestamp is discarded (paper Figure 3: "update backup queue"). A commit
/// naming an event no longer present is simply a no-op prune.
///
/// Each retained event also carries a monotone **send index** (1, 2, 3…
/// in push order). The index is what makes the backup queue double as a
/// retransmission source for unreliable links: a recovering peer names the
/// last index it saw and [`retransmit_from`](Self::retransmit_from) replays
/// everything retained from that point on.
///
/// Events are retained as `Arc<Event>` so that the backup copy shares its
/// allocation with the in-flight mirror copy: retaining a sent event is a
/// reference-count bump, not a deep clone of the payload.
#[derive(Debug, Default)]
pub struct BackupQueue {
    q: VecDeque<(u64, Arc<Event>)>,
    stats: QueueStats,
    /// Join of all stamps ever retained; `last()` falls back to this when
    /// the queue has just been pruned empty.
    frontier: VectorTimestamp,
    /// Send index assigned to the next pushed event (starts at 1).
    next_idx: u64,
}

impl BackupQueue {
    /// An empty backup queue.
    pub fn new() -> Self {
        BackupQueue { next_idx: 1, ..Self::default() }
    }

    /// Retain a sent event until a checkpoint covers it; returns the send
    /// index assigned to it. Accepts an owned event or an `Arc` shared with
    /// the outgoing mirror path (the zero-copy case).
    pub fn push(&mut self, e: impl Into<Arc<Event>>) -> u64 {
        let e = e.into();
        // `Default` can't set 1, so normalize lazily for default-built
        // queues.
        if self.next_idx == 0 {
            self.next_idx = 1;
        }
        let idx = self.next_idx;
        self.next_idx += 1;
        self.frontier.merge(&e.stamp);
        self.q.push_back((idx, e));
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.q.len());
        idx
    }

    /// The send index the next pushed event will receive.
    pub fn next_send_idx(&self) -> u64 {
        self.next_idx.max(1)
    }

    /// Advance the next send index to at least `idx` (monotone; a lower
    /// value is ignored). A coordinator promoted over an existing durable
    /// journal resumes indexing *after* the journal's highest entry — the
    /// send index doubles as the journal key, and the log requires strict
    /// monotonicity across the handoff.
    pub fn resume_from(&mut self, idx: u64) {
        self.next_idx = self.next_idx.max(idx).max(1);
    }

    /// The oldest send index still retained, if any.
    pub fn oldest_retained_idx(&self) -> Option<u64> {
        self.q.front().map(|(i, _)| *i)
    }

    /// Every send index strictly below this value is covered by a
    /// committed checkpoint (central stamps are totally ordered along push
    /// order, so pruning removes a prefix of indices). When the queue is
    /// empty everything ever pushed has committed and the floor equals
    /// [`next_send_idx`](Self::next_send_idx). A durable journal may
    /// delete storage for entries below the floor — this is the
    /// commit-driven truncation watermark of `mirror-store`.
    pub fn truncation_floor(&self) -> u64 {
        self.oldest_retained_idx().unwrap_or_else(|| self.next_send_idx())
    }

    /// Replay every retained event with send index `>= idx`, oldest first.
    /// Events already pruned by a committed checkpoint are gone — by
    /// definition the peer acknowledged a state that covers them. Replayed
    /// events share their allocation with the queue (`Arc` clones).
    pub fn retransmit_from(&self, idx: u64) -> Vec<(u64, Arc<Event>)> {
        self.q.iter().filter(|(i, _)| *i >= idx).cloned().collect()
    }

    /// Stamp of the most recently retained event — the checkpoint proposal
    /// the central control task makes ("chkpt = last on backup queue").
    /// Falls back to the all-time frontier when the queue is empty, so a
    /// freshly pruned site still proposes a meaningful value. Returned by
    /// reference: this sits on the per-event send path, so it must not
    /// allocate a fresh timestamp per call.
    pub fn last_stamp(&self) -> &VectorTimestamp {
        self.q.back().map(|(_, e)| &e.stamp).unwrap_or(&self.frontier)
    }

    /// Does the queue (or its history) cover the given stamp — i.e. would a
    /// commit at `stamp` refer to an event this site has seen? Used for the
    /// paper's "if commit in backup queue" guard.
    pub fn covers(&self, stamp: &VectorTimestamp) -> bool {
        stamp.dominated_by(&self.frontier)
    }

    /// Has this queue never retained anything? A freshly (re)started site
    /// is *fresh*: its guards should not suppress traffic merely because
    /// its history is empty (e.g. a rejoined mirror whose seeded frontier
    /// references events it never held).
    pub fn is_fresh(&self) -> bool {
        self.frontier.is_zero() && self.stats.enqueued == 0
    }

    /// Discard every retained event dominated by `commit`; returns how many
    /// events were pruned. Events concurrent with or after the commit stay.
    pub fn prune(&mut self, commit: &VectorTimestamp) -> usize {
        let before = self.q.len();
        self.q.retain(|(_, e)| !e.stamp.dominated_by(commit));
        let pruned = before - self.q.len();
        self.stats.dequeued += pruned as u64;
        pruned
    }

    /// Current length — a monitored variable for adaptation.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is awaiting a checkpoint.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Iterate retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.q.iter().map(|(_, e)| e.as_ref())
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventBody, FlightStatus};
    use crate::timestamp::VectorTimestamp;

    fn ev(stream: u16, seq: u64) -> Event {
        let mut e = Event::new(stream, seq, 1, EventBody::Status(FlightStatus::EnRoute));
        let mut stamp = VectorTimestamp::new(2);
        stamp.advance(stream as usize, seq);
        e.stamp = stamp;
        e
    }

    #[test]
    fn ready_queue_is_fifo() {
        let mut q = ReadyQueue::new();
        q.push(ev(0, 1));
        q.push(ev(0, 2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ready_queue_stats_track_watermark() {
        let mut q = ReadyQueue::new();
        for s in 1..=5 {
            q.push(ev(0, s));
        }
        q.pop();
        q.push(ev(0, 6));
        let st = q.stats();
        assert_eq!(st.enqueued, 6);
        assert_eq!(st.dequeued, 1);
        assert_eq!(st.high_watermark, 5);
    }

    #[test]
    fn drain_up_to_takes_oldest_first_and_caps() {
        let mut q = ReadyQueue::new();
        for s in 1..=3 {
            q.push(ev(0, s));
        }
        let drained = q.drain_up_to(10);
        assert_eq!(drained.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn backup_prunes_dominated_events_only() {
        let mut b = BackupQueue::new();
        b.push(ev(0, 1));
        b.push(ev(0, 2));
        b.push(ev(1, 1)); // concurrent with stream-0 stamps
        b.push(ev(0, 3));
        let mut commit = VectorTimestamp::new(2);
        commit.advance(0, 2);
        let pruned = b.prune(&commit);
        assert_eq!(pruned, 2); // (0,1) and (0,2)
        assert_eq!(b.len(), 2); // (1,1) concurrent, (0,3) after
    }

    #[test]
    fn last_stamp_survives_full_prune() {
        let mut b = BackupQueue::new();
        b.push(ev(0, 1));
        b.push(ev(0, 2));
        let last = b.last_stamp().clone();
        b.prune(&last);
        assert!(b.is_empty());
        // The frontier remembers what was covered.
        assert_eq!(b.last_stamp(), &last);
        assert!(b.covers(&last));
    }

    #[test]
    fn commit_for_unknown_event_is_ignored_gracefully() {
        let mut b = BackupQueue::new();
        b.push(ev(0, 1));
        let mut unknown = VectorTimestamp::new(2);
        unknown.advance(1, 99);
        assert!(!b.covers(&unknown));
        // Pruning at a stamp that only covers stream 1 leaves stream-0
        // events alone.
        assert_eq!(b.prune(&unknown), 0);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn freshness_reflects_history() {
        let mut b = BackupQueue::new();
        assert!(b.is_fresh());
        b.push(ev(0, 1));
        assert!(!b.is_fresh());
        let last = b.last_stamp().clone();
        b.prune(&last);
        assert!(!b.is_fresh(), "a pruned queue is empty but not fresh");
    }

    #[test]
    fn send_indices_are_monotone_and_survive_pruning() {
        let mut b = BackupQueue::new();
        assert_eq!(b.next_send_idx(), 1);
        assert_eq!(b.push(ev(0, 1)), 1);
        assert_eq!(b.push(ev(0, 2)), 2);
        assert_eq!(b.push(ev(1, 1)), 3);
        let mut commit = VectorTimestamp::new(2);
        commit.advance(0, 2);
        b.prune(&commit); // drops indices 1 and 2
                          // Indices keep counting; pruning never reuses them.
        assert_eq!(b.push(ev(0, 3)), 4);
        assert_eq!(b.next_send_idx(), 5);
    }

    #[test]
    fn retransmit_from_replays_retained_suffix() {
        let mut b = BackupQueue::new();
        for s in 1..=5 {
            b.push(ev(0, s));
        }
        let replay = b.retransmit_from(3);
        assert_eq!(replay.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(replay.iter().map(|(_, e)| e.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        // From beyond the end: nothing to replay.
        assert!(b.retransmit_from(99).is_empty());
        // From 0/1: everything retained.
        assert_eq!(b.retransmit_from(0).len(), 5);
    }

    #[test]
    fn retransmit_skips_pruned_events() {
        let mut b = BackupQueue::new();
        b.push(ev(0, 1));
        b.push(ev(0, 2));
        b.push(ev(1, 1));
        let mut commit = VectorTimestamp::new(2);
        commit.advance(0, 2);
        b.prune(&commit);
        let replay = b.retransmit_from(1);
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].0, 3);
    }

    #[test]
    fn retransmit_at_prune_boundaries() {
        // Push 1..=6, commit through (0,4): indices 1..=4 pruned, floor 5.
        let mut b = BackupQueue::new();
        for s in 1..=6 {
            b.push(ev(0, s));
        }
        let mut commit = VectorTimestamp::new(2);
        commit.advance(0, 4);
        assert_eq!(b.prune(&commit), 4);
        assert_eq!(b.truncation_floor(), 5);
        assert_eq!(b.oldest_retained_idx(), Some(5));

        // Exactly at the truncation point: full retained suffix.
        let at = b.retransmit_from(5);
        assert_eq!(at.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![5, 6]);
        // One below: the pruned index 4 is gone — the replay silently
        // starts at the retained suffix. Callers must detect the gap via
        // truncation_floor, not from the result length.
        let below = b.retransmit_from(4);
        assert_eq!(below.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![5, 6]);
        assert!(b.truncation_floor() > 4, "idx 4 predates the floor: gap");
        // Far below: same retained suffix, same gap signal.
        let far = b.retransmit_from(1);
        assert_eq!(far.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![5, 6]);
        assert!(b.truncation_floor() > 1);
    }

    #[test]
    fn truncation_floor_tracks_prunes_and_empty_queue() {
        let mut b = BackupQueue::new();
        assert_eq!(b.truncation_floor(), 1, "fresh queue: nothing committed");
        for s in 1..=3 {
            b.push(ev(0, s));
        }
        assert_eq!(b.truncation_floor(), 1, "nothing pruned yet");
        let last = b.last_stamp().clone();
        b.prune(&last);
        assert!(b.is_empty());
        assert_eq!(b.truncation_floor(), 4, "everything pushed has committed");
        assert_eq!(b.oldest_retained_idx(), None);
        b.push(ev(0, 4));
        assert_eq!(b.truncation_floor(), 4, "new retained entry pins the floor");
    }

    #[test]
    fn covers_tracks_history_not_just_contents() {
        let mut b = BackupQueue::new();
        b.push(ev(0, 5));
        let mut probe = VectorTimestamp::new(2);
        probe.advance(0, 4);
        assert!(b.covers(&probe));
        probe.advance(0, 9);
        assert!(!b.covers(&probe));
    }
}
