//! Lightweight metrics used across the framework.
//!
//! The paper's evaluation reports two quantities: **total execution time**
//! for a fixed event sequence (the scalability metric of §1) and **update
//! delay** — the time from an event's entry into the OIS until the central
//! EDE sends it to clients (Figures 8 and 9). [`DelayStats`] accumulates
//! the latter; [`TimeSeries`] records it over time for the adaptation
//! experiment.

/// Running summary of a delay distribution (microseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DelayStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Smallest sample (µs); 0 when empty.
    pub min_us: u64,
}

impl DelayStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one delay sample.
    pub fn record(&mut self, delay_us: u64) {
        if self.count == 0 {
            self.min_us = delay_us;
        } else {
            self.min_us = self.min_us.min(delay_us);
        }
        self.count += 1;
        self.sum_us += delay_us;
        self.max_us = self.max_us.max(delay_us);
    }

    /// Arithmetic mean (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &DelayStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }
}

/// A delay distribution that retains its samples for percentile queries
/// (used by experiment reports; the running [`DelayStats`] stays O(1) for
/// the hot path).
#[derive(Debug, Clone, Default)]
pub struct DelayDistribution {
    samples: Vec<u64>,
    sorted: bool,
}

impl DelayDistribution {
    /// An empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample (µs).
    pub fn record(&mut self, delay_us: u64) {
        self.samples.push(delay_us);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile (0.0–100.0), nearest-rank; 0 when empty.
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.clamp(1, self.samples.len()) - 1]
    }

    /// Mean (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }
}

/// A time series of (time µs, value) samples — e.g. update delay over the
/// run, bucketed per second for Figure 9.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample; times should be non-decreasing.
    pub fn push(&mut self, t_us: u64, value: f64) {
        self.samples.push((t_us, value));
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Bucket samples into fixed windows of `width_us`, averaging within
    /// each bucket; returns (bucket start µs, mean value) for non-empty
    /// buckets in time order. This is how Figure 9's per-second series is
    /// produced from raw per-event delays.
    pub fn bucket_mean(&self, width_us: u64) -> Vec<(u64, f64)> {
        assert!(width_us > 0, "bucket width must be positive");
        let mut out: Vec<(u64, f64, u64)> = Vec::new(); // (start, sum, n)
        for &(t, v) in &self.samples {
            let start = (t / width_us) * width_us;
            match out.last_mut() {
                Some((s, sum, n)) if *s == start => {
                    *sum += v;
                    *n += 1;
                }
                _ => out.push((start, v, 1)),
            }
        }
        out.into_iter().map(|(s, sum, n)| (s, sum / n as f64)).collect()
    }

    /// Peak value over the whole series.
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean value over the whole series; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }
}

/// Counters kept by an auxiliary unit; sampled by experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuxCounters {
    /// Events received from sources / from the central site.
    pub received: u64,
    /// Events forwarded to the local main unit.
    pub forwarded: u64,
    /// Events put on the wire toward mirrors.
    pub mirrored: u64,
    /// Bytes put on the wire toward mirrors (per destination).
    pub mirrored_bytes: u64,
    /// Events suppressed by semantic rules (mirror path).
    pub suppressed: u64,
    /// Checkpoint rounds initiated (central) or commits applied (mirror).
    pub checkpoints: u64,
    /// Control messages emitted.
    pub control_msgs: u64,
    /// Adaptation directives applied.
    pub adaptations: u64,
    /// Control frames rejected because they carried a stale leadership
    /// term (a fenced-out old coordinator still transmitting).
    pub stale_term_rejects: u64,
    /// Partition-map adoptions (epoch-fenced; stale maps don't count).
    pub partition_updates: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_stats_basic() {
        let mut d = DelayStats::new();
        d.record(10);
        d.record(30);
        d.record(20);
        assert_eq!(d.count, 3);
        assert_eq!(d.mean_us(), 20.0);
        assert_eq!(d.min_us, 10);
        assert_eq!(d.max_us, 30);
    }

    #[test]
    fn delay_stats_empty_mean_is_zero() {
        assert_eq!(DelayStats::new().mean_us(), 0.0);
    }

    #[test]
    fn delay_stats_merge() {
        let mut a = DelayStats::new();
        a.record(5);
        let mut b = DelayStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_us, 5);
        assert_eq!(a.max_us, 25);
        let mut empty = DelayStats::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&DelayStats::new());
        assert_eq!(a.count, 3);
    }

    #[test]
    fn distribution_percentiles_nearest_rank() {
        let mut d = DelayDistribution::new();
        for v in [50u64, 10, 40, 20, 30] {
            d.record(v);
        }
        assert_eq!(d.percentile(0.0), 10);
        assert_eq!(d.percentile(50.0), 30);
        assert_eq!(d.percentile(90.0), 50);
        assert_eq!(d.percentile(100.0), 50);
        assert_eq!(d.mean_us(), 30.0);
        assert_eq!(d.len(), 5);
        // Recording after a query re-sorts lazily.
        d.record(5);
        assert_eq!(d.percentile(0.0), 5);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let mut d = DelayDistribution::new();
        assert!(d.is_empty());
        assert_eq!(d.percentile(99.0), 0);
        assert_eq!(d.mean_us(), 0.0);
    }

    #[test]
    fn bucket_mean_averages_within_windows() {
        let mut ts = TimeSeries::new();
        ts.push(100, 2.0);
        ts.push(200, 4.0);
        ts.push(1_000_100, 10.0);
        let b = ts.bucket_mean(1_000_000);
        assert_eq!(b, vec![(0, 3.0), (1_000_000, 10.0)]);
    }

    #[test]
    fn series_max_and_mean() {
        let mut ts = TimeSeries::new();
        ts.push(0, 1.0);
        ts.push(1, 3.0);
        assert_eq!(ts.max(), 3.0);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
    }
}
