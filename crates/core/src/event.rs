//! Application-level update events.
//!
//! The paper's workload carries two kinds of incoming streams: FAA flight
//! position updates and Delta-internal flight status updates. The Event
//! Derivation Engine additionally produces *derived* events (e.g. `flight
//! arrived`, composed from `landed`/`at runway`/`at gate`), and the
//! mirroring layer produces *coalesced* events that stand in for a run of
//! superseded originals.
//!
//! Events carry an explicit [`wire_size`](Event::wire_size) so that both the
//! real wire format (`mirror-echo`) and the cluster simulator (`mirror-sim`)
//! account identically for the bytes a given event occupies on a link. The
//! experiments of the paper sweep event payload sizes from a few hundred
//! bytes to 8 KB; `padding` models that sweep without materializing buffers
//! on the simulation path.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::timestamp::{Seq, VectorTimestamp};

/// Serde adapter for [`Bytes`] payloads: serialized as a plain byte
/// sequence (identical to `Vec<u8>`), deserialized into an owned buffer.
/// Keeps the wire/serde representation independent of the zero-copy
/// in-memory type.
#[allow(dead_code)] // referenced from derive-generated code only
mod opaque_bytes {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(b.iter())
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

/// Identifier of an incoming event stream (one vector-timestamp component
/// per stream).
pub type StreamId = u16;

/// Identifier of a flight — the natural partitioning key of the airline OIS
/// workload; overwrite/coalesce rules operate per flight.
pub type FlightId = u32;

/// Conventional stream ids used by the airline workload.
pub mod streams {
    use super::StreamId;
    /// FAA radar-derived flight position stream.
    pub const FAA: StreamId = 0;
    /// Delta-internal flight status stream (gate readers, crew systems…).
    pub const DELTA: StreamId = 1;
}

/// Lifecycle status carried by Delta status events.
///
/// The order of variants follows the flight lifecycle; the EDE's state
/// machine (`mirror-ede`) enforces legal transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FlightStatus {
    /// Planned; no operational activity yet.
    Scheduled = 0,
    /// Passengers boarding at the gate.
    Boarding = 1,
    /// Pushed back / wheels up.
    Departed = 2,
    /// Cruising between airports.
    EnRoute = 3,
    /// Touched down at the destination.
    Landed = 4,
    /// Taxiing off the runway.
    AtRunway = 5,
    /// Parked at the arrival gate.
    AtGate = 6,
    /// Fully arrived (terminal state; often derived from the
    /// landed/at-runway/at-gate triple).
    Arrived = 7,
    /// Cancelled (terminal state).
    Cancelled = 8,
}

impl FlightStatus {
    /// All statuses, in lifecycle order.
    pub const ALL: [FlightStatus; 9] = [
        FlightStatus::Scheduled,
        FlightStatus::Boarding,
        FlightStatus::Departed,
        FlightStatus::EnRoute,
        FlightStatus::Landed,
        FlightStatus::AtRunway,
        FlightStatus::AtGate,
        FlightStatus::Arrived,
        FlightStatus::Cancelled,
    ];

    /// Decode from the wire representation.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }
}

/// A single radar position fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionFix {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Altitude in feet.
    pub alt_ft: f64,
    /// Ground speed in knots.
    pub speed_kts: f64,
    /// Heading in degrees clockwise from north.
    pub heading_deg: f64,
}

impl PositionFix {
    /// Fixed on-wire footprint of a position fix (five little-endian `f64`s).
    pub const WIRE_SIZE: usize = 5 * 8;
}

/// The typed body of an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventBody {
    /// FAA flight position update.
    Position(PositionFix),
    /// Delta flight status transition.
    Status(FlightStatus),
    /// Gate-reader record: one passenger boarded (`boarded` of `expected`).
    Boarding {
        /// Passengers boarded so far.
        boarded: u32,
        /// Passengers expected on the flight.
        expected: u32,
    },
    /// Baggage-system record: bags loaded into the hold vs. bags
    /// reconciled against boarded passengers (positive passenger-bag
    /// match — a flight should not depart with unreconciled bags).
    Baggage {
        /// Bags loaded so far.
        loaded: u32,
        /// Bags reconciled against boarded passengers.
        reconciled: u32,
    },
    /// A derived event produced by business logic (e.g. `flight arrived`),
    /// tagged with the statuses it collapses.
    Derived {
        /// The derived status this event announces.
        status: FlightStatus,
        /// How many constituent events it stands for.
        collapsed: u32,
    },
    /// A coalesced mirror event: the surviving representative of `count`
    /// superseded events. Carries the most recent position.
    Coalesced {
        /// Most recent position fix of the coalesced run.
        last: PositionFix,
        /// Number of original events this one stands for.
        count: u32,
    },
    /// Opaque application payload (used by tests and custom deployments).
    ///
    /// Backed by [`Bytes`] so that cloning an event — which happens at
    /// every queue/channel hop of the mirroring fan-out — bumps a
    /// reference count instead of copying the payload.
    Opaque(#[serde(with = "opaque_bytes")] Bytes),
}

impl EventBody {
    /// Bytes this body occupies on the wire, excluding header and padding.
    pub fn wire_size(&self) -> usize {
        match self {
            EventBody::Position(_) => PositionFix::WIRE_SIZE,
            EventBody::Status(_) => 1,
            EventBody::Boarding { .. } => 8,
            EventBody::Baggage { .. } => 8,
            EventBody::Derived { .. } => 5,
            EventBody::Coalesced { .. } => PositionFix::WIRE_SIZE + 4,
            EventBody::Opaque(b) => 4 + b.len(),
        }
    }

    /// Discriminant used by the wire format.
    pub fn tag(&self) -> u8 {
        match self {
            EventBody::Position(_) => 0,
            EventBody::Status(_) => 1,
            EventBody::Boarding { .. } => 2,
            EventBody::Derived { .. } => 3,
            EventBody::Coalesced { .. } => 4,
            EventBody::Opaque(_) => 5,
            EventBody::Baggage { .. } => 6,
        }
    }
}

/// The application-visible *type* of an event, used by semantic mirroring
/// rules to select events for filtering/overwriting/combination.
///
/// This is deliberately coarser than [`EventBody`]: rules are written
/// against types ("overwrite FAA position events"), sometimes refined by a
/// target *value* ("discard after Delta status == Landed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventType {
    /// FAA position update.
    FaaPosition,
    /// Delta status update.
    DeltaStatus,
    /// Gate-reader boarding record.
    Boarding,
    /// Baggage-system reconciliation record.
    Baggage,
    /// Derived/complex event produced by the EDE or by tuple rules.
    Derived,
    /// Coalesced mirror event.
    Coalesced,
    /// Application-defined type.
    Custom(u16),
}

impl EventType {
    /// The event type naturally associated with a body.
    pub fn of(body: &EventBody) -> Self {
        match body {
            EventBody::Position(_) => EventType::FaaPosition,
            EventBody::Status(_) => EventType::DeltaStatus,
            EventBody::Boarding { .. } => EventType::Boarding,
            EventBody::Baggage { .. } => EventType::Baggage,
            EventBody::Derived { .. } => EventType::Derived,
            EventBody::Coalesced { .. } => EventType::Coalesced,
            EventBody::Opaque(_) => EventType::Custom(0),
        }
    }
}

/// Fixed header footprint of every event on the wire: stream id (2) +
/// sequence number (8) + flight id (4) + body tag (1) + stamp component
/// count (2) + padding length (4) + ingress time (8). `mirror-echo`'s
/// encoder produces exactly this layout, so [`Event::wire_size`] is the
/// true on-wire size, not an estimate.
pub const EVENT_HEADER_WIRE_SIZE: usize = 2 + 8 + 4 + 1 + 2 + 4 + 8;

/// An application-level update event flowing through the OIS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Which incoming stream produced this event.
    pub stream: StreamId,
    /// Stream-unique, monotonically increasing identifier; captures the
    /// event order within its stream (paper §3.3).
    pub seq: Seq,
    /// Flight this event concerns.
    pub flight: FlightId,
    /// Typed payload.
    pub body: EventBody,
    /// Vector timestamp assigned when the event enters the primary site;
    /// empty until the receiving task stamps it.
    pub stamp: VectorTimestamp,
    /// Extra payload bytes carried by the event (models the paper's event
    /// size sweeps without materializing buffers on the simulation path).
    pub padding: u32,
    /// Virtual/real time (µs) at which the event entered the OIS; basis of
    /// the *update delay* metric (Figures 8 and 9).
    pub ingress_us: u64,
}

impl Event {
    /// Create an unstamped event.
    pub fn new(stream: StreamId, seq: Seq, flight: FlightId, body: EventBody) -> Self {
        Event {
            stream,
            seq,
            flight,
            body,
            stamp: VectorTimestamp::empty(),
            padding: 0,
            ingress_us: 0,
        }
    }

    /// Builder-style: attach padding bytes so the event occupies a target
    /// wire size (saturating; header+body bytes are always present).
    pub fn with_total_size(mut self, total: usize) -> Self {
        let base = EVENT_HEADER_WIRE_SIZE + self.body.wire_size() + self.stamp.wire_size();
        self.padding = total.saturating_sub(base) as u32;
        self
    }

    /// Builder-style: set the ingress time.
    pub fn with_ingress_us(mut self, t: u64) -> Self {
        self.ingress_us = t;
        self
    }

    /// Application-level type of this event.
    pub fn event_type(&self) -> EventType {
        EventType::of(&self.body)
    }

    /// The flight status this event implies, if any (used by complex
    /// sequence rules that trigger on a status value).
    pub fn status_value(&self) -> Option<FlightStatus> {
        match &self.body {
            EventBody::Status(s) => Some(*s),
            EventBody::Derived { status, .. } => Some(*status),
            _ => None,
        }
    }

    /// Total bytes this event occupies on a link (header + stamp + body +
    /// padding). Both `mirror-echo` framing and `mirror-sim` link costs use
    /// this figure, keeping real and simulated byte accounting identical.
    pub fn wire_size(&self) -> usize {
        EVENT_HEADER_WIRE_SIZE
            + self.stamp.wire_size()
            + self.body.wire_size()
            + self.padding as usize
    }

    /// Convenience constructor for an FAA position event.
    pub fn faa_position(seq: Seq, flight: FlightId, fix: PositionFix) -> Self {
        Event::new(streams::FAA, seq, flight, EventBody::Position(fix))
    }

    /// Convenience constructor for a Delta status event.
    pub fn delta_status(seq: Seq, flight: FlightId, status: FlightStatus) -> Self {
        Event::new(streams::DELTA, seq, flight, EventBody::Status(status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix() -> PositionFix {
        PositionFix {
            lat: 33.64,
            lon: -84.42,
            alt_ft: 31000.0,
            speed_kts: 440.0,
            heading_deg: 270.0,
        }
    }

    #[test]
    fn status_roundtrip_through_u8() {
        for s in FlightStatus::ALL {
            assert_eq!(FlightStatus::from_u8(s as u8), Some(s));
        }
        assert_eq!(FlightStatus::from_u8(9), None);
        assert_eq!(FlightStatus::from_u8(255), None);
    }

    #[test]
    fn status_order_follows_lifecycle() {
        assert!(FlightStatus::Scheduled < FlightStatus::Boarding);
        assert!(FlightStatus::Landed < FlightStatus::AtGate);
        assert!(FlightStatus::AtGate < FlightStatus::Arrived);
    }

    #[test]
    fn event_type_of_body() {
        assert_eq!(EventType::of(&EventBody::Position(fix())), EventType::FaaPosition);
        assert_eq!(EventType::of(&EventBody::Status(FlightStatus::Landed)), EventType::DeltaStatus);
        assert_eq!(
            EventType::of(&EventBody::Derived { status: FlightStatus::Arrived, collapsed: 3 }),
            EventType::Derived
        );
        assert_eq!(
            EventType::of(&EventBody::Opaque(Bytes::from_static(&[1, 2]))),
            EventType::Custom(0)
        );
    }

    #[test]
    fn with_total_size_pads_up_to_target() {
        let e = Event::faa_position(1, 100, fix()).with_total_size(1000);
        assert_eq!(e.wire_size(), 1000);
    }

    #[test]
    fn with_total_size_saturates_below_base() {
        let e = Event::faa_position(1, 100, fix());
        let base = e.wire_size();
        let e = e.with_total_size(1); // smaller than header+body
        assert_eq!(e.padding, 0);
        assert_eq!(e.wire_size(), base);
    }

    #[test]
    fn body_wire_sizes_are_stable() {
        assert_eq!(EventBody::Position(fix()).wire_size(), 40);
        assert_eq!(EventBody::Status(FlightStatus::Landed).wire_size(), 1);
        assert_eq!(EventBody::Boarding { boarded: 3, expected: 120 }.wire_size(), 8);
        assert_eq!(EventBody::Opaque(Bytes::from(vec![0u8; 10])).wire_size(), 14);
    }

    #[test]
    fn status_value_extraction() {
        let e = Event::delta_status(7, 42, FlightStatus::Landed);
        assert_eq!(e.status_value(), Some(FlightStatus::Landed));
        let p = Event::faa_position(8, 42, fix());
        assert_eq!(p.status_value(), None);
        let d = Event::new(
            streams::DELTA,
            9,
            42,
            EventBody::Derived { status: FlightStatus::Arrived, collapsed: 3 },
        );
        assert_eq!(d.status_value(), Some(FlightStatus::Arrived));
    }

    #[test]
    fn stamping_grows_wire_size() {
        let mut e = Event::faa_position(1, 5, fix());
        let unstamped = e.wire_size();
        e.stamp = VectorTimestamp::new(2);
        assert!(e.wire_size() > unstamped);
    }
}
