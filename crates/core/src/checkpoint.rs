//! Checkpointing — the paper's modified two-phase commit (§3.2.1, Fig. 3).
//!
//! The central auxiliary unit coordinates; all mirror sites participate.
//! The protocol deviates from textbook 2PC in ways that exploit the
//! setting (reliable in-order intra-cluster channels, idempotent pruning):
//!
//! * **Voting phase** — the coordinator proposes a timestamp up to which the
//!   consistent view can advance (usually the most recent value in its
//!   backup queue). Each site replies with the most recent event its
//!   business logic has processed, capped by the proposal.
//! * **Commit phase** — the coordinator takes the (componentwise) minimum of
//!   all replies and issues a commit for it; every unit may then discard
//!   backup-queue events up to that value.
//! * There are **no NO votes and no ABORT messages**; no commit-phase
//!   acknowledgements are awaited; **no timeouts** are used — if a round has
//!   not committed before the next one starts, the later commit encapsulates
//!   the earlier one, and a commit naming an event a unit no longer holds is
//!   simply ignored.
//!
//! The state machines here are sans-IO: they consume [`ControlMsg`]s and
//! yield [`CheckpointMsg`] routing instructions which the auxiliary unit
//! (or a test harness) turns into channel sends.

use crate::adapt::MonitorReport;
use crate::control::{ControlMsg, SiteId, CENTRAL_SITE};
use crate::queue::BackupQueue;
use crate::timestamp::VectorTimestamp;

/// A routing instruction emitted by a checkpoint state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointMsg {
    /// Send to every mirror site's auxiliary unit.
    BroadcastToMirrors(ControlMsg),
    /// Send to this site's own main unit.
    ToLocalMain(ControlMsg),
    /// Send to the central site's auxiliary unit.
    ToCentral(ControlMsg),
}

/// One in-flight voting round at the coordinator.
#[derive(Debug)]
struct PendingRound {
    round: u64,
    proposal: VectorTimestamp,
    /// The participant set the `CHKPT` was broadcast to (the member
    /// mirrors at `begin` time, plus the central main unit). Completion is
    /// judged against this set, not current membership: a mirror
    /// readmitted mid-round never saw this round's proposal and must not
    /// gate it.
    participants: Vec<SiteId>,
    /// Replies received so far, one per expected participant.
    replies: Vec<(SiteId, VectorTimestamp)>,
}

impl PendingRound {
    fn replied(&self, site: SiteId) -> bool {
        self.replies.iter().any(|(s, _)| *s == site)
    }
}

/// Failure detection is **disabled by default** (`0`): the paper's
/// protocol deliberately has no timeouts, and under a processing backlog
/// checkpoint replies legitimately lag many rounds behind — treating that
/// as failure would be wrong. Embeddings that want the §6 recovery
/// extension opt in via
/// [`CentralCheckpointer::set_suspect_after`].
pub const DEFAULT_SUSPECT_AFTER: u32 = 0;

/// Coordinator state machine running in the **central site's auxiliary
/// unit**.
#[derive(Debug)]
pub struct CentralCheckpointer {
    mirrors: Vec<SiteId>,
    /// Membership epoch stamped onto outgoing `CHKPT`/`COMMIT` messages
    /// (see [`crate::membership`]); the embedding advances it on every
    /// membership change.
    epoch: u64,
    /// Leadership term stamped onto outgoing `CHKPT`/`COMMIT` messages and
    /// fenced against on incoming replies. Round numbers restart at 1 in
    /// every new coordinator, so the term — bumped at each promotion — is
    /// what keeps a resurrected old coordinator's traffic (and replies
    /// addressed to it) from being confused with this coordinator's.
    term: u64,
    next_round: u64,
    pending: Option<PendingRound>,
    committed: VectorTimestamp,
    /// Highest round number each participant has ever replied to (stale
    /// replies included). Failure detection compares these: a mirror whose
    /// newest reply lags `suspect_after` rounds behind another
    /// participant's newest reply is declared failed — the comparison
    /// baseline travels through the same queues, so a cluster-wide backlog
    /// never looks like a failure.
    last_reply_round: std::collections::HashMap<SiteId, u64>,
    /// Missed-round threshold for failure detection (0 disables).
    suspect_after: u32,
    /// Mirrors declared failed, not yet collected by the embedding.
    newly_failed: Vec<SiteId>,
    /// All mirrors ever declared failed (and not readmitted).
    pub failed: Vec<SiteId>,
    /// Rounds started.
    pub rounds_started: u64,
    /// Rounds that reached commit.
    pub rounds_committed: u64,
    /// Rounds abandoned because a newer round superseded them.
    pub rounds_abandoned: u64,
    /// Replies discarded because they answered a different leadership term
    /// (fencing evidence for tests and operators).
    pub stale_term_replies: u64,
}

impl CentralCheckpointer {
    /// A coordinator for the given set of mirror sites.
    pub fn new(mirrors: Vec<SiteId>) -> Self {
        CentralCheckpointer {
            mirrors,
            epoch: 0,
            term: 0,
            next_round: 1,
            pending: None,
            committed: VectorTimestamp::empty(),
            last_reply_round: std::collections::HashMap::new(),
            suspect_after: DEFAULT_SUSPECT_AFTER,
            newly_failed: Vec::new(),
            failed: Vec::new(),
            rounds_started: 0,
            rounds_committed: 0,
            rounds_abandoned: 0,
            stale_term_replies: 0,
        }
    }

    /// Change the failure-detection threshold: a mirror whose newest reply
    /// lags this many rounds behind another participant's newest reply is
    /// declared failed. `0` disables detection; non-zero values are
    /// clamped to at least 2 (a lag of 1 round is normal in-flight skew).
    pub fn set_suspect_after(&mut self, rounds: u32) {
        self.suspect_after = if rounds == 0 { 0 } else { rounds.max(2) };
    }

    /// Mirrors declared failed since the last call (drains the list); the
    /// embedding should stop routing requests and data to them.
    pub fn take_newly_failed(&mut self) -> Vec<SiteId> {
        std::mem::take(&mut self.newly_failed)
    }

    /// Set the membership epoch stamped onto every subsequent `CHKPT` and
    /// `COMMIT`.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The membership epoch currently stamped onto outgoing rounds.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the leadership term stamped onto every subsequent `CHKPT` and
    /// `COMMIT` and required of every accepted reply. Monotone: a lower
    /// value is ignored (a coordinator never steps back behind a term it
    /// has already claimed).
    pub fn set_term(&mut self, term: u64) {
        self.term = self.term.max(term);
    }

    /// The leadership term this coordinator is operating under.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Gracefully retire a mirror (scale-in): remove it from the
    /// participant set **without** marking it failed. If it was gating the
    /// in-flight round, the round either completes on the next reply
    /// (membership is re-checked per participant) or — if no further reply
    /// is due — becomes [`pending_wedged`](Self::pending_wedged) and is
    /// restarted by the coordinator's idle tick. Returns `true` if the
    /// site was a participant.
    pub fn retire(&mut self, site: SiteId) -> bool {
        let was_in = self.mirrors.contains(&site);
        self.mirrors.retain(|&s| s != site);
        self.last_reply_round.remove(&site);
        was_in
    }

    /// Declare a mirror failed out-of-band — the transport layer reports
    /// its link dead (reconnect budget exhausted), so there is no point
    /// waiting `suspect_after` rounds of silence. Returns `true` if the
    /// site was participating and is now excluded.
    pub fn declare_failed(&mut self, site: SiteId) -> bool {
        let was_in = self.mirrors.contains(&site);
        if was_in {
            self.mirrors.retain(|&s| s != site);
            self.failed.push(site);
        }
        was_in
    }

    /// Re-admit a mirror (after external recovery/state transfer): it
    /// resumes participating in checkpoint rounds.
    pub fn readmit(&mut self, site: SiteId) {
        self.failed.retain(|&s| s != site);
        // A round begun before this readmission addressed its CHKPT to the
        // site's *old* instance; the replacement never saw the proposal and
        // will never reply, so it must stop gating that round. Otherwise a
        // participant evicted and readmitted mid-round would be back in the
        // membership with no reply ever coming — permanently incompletable,
        // yet never classified wedged by `pending_wedged`.
        if let Some(p) = &mut self.pending {
            p.participants.retain(|&s| s != site);
        }
        // Give the rejoined site a fresh baseline so it is not instantly
        // re-flagged for rounds it never saw.
        let newest = self.last_reply_round.values().copied().max().unwrap_or(0);
        self.last_reply_round.insert(site, newest);
        if !self.mirrors.contains(&site) {
            self.mirrors.push(site);
        }
    }

    /// The set of mirror sites participating.
    pub fn mirrors(&self) -> &[SiteId] {
        &self.mirrors
    }

    /// Timestamp of the last committed checkpoint.
    pub fn committed(&self) -> &VectorTimestamp {
        &self.committed
    }

    /// Is a voting round currently awaiting replies?
    pub fn round_in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// Is the in-flight round *wedged* — no future reply can complete it?
    ///
    /// True exactly when every participant still in the membership has
    /// already replied and yet the round did not commit. That state is
    /// reachable when membership shrank *after* the last reply was
    /// consumed (completion is checked on reply arrival, so an eviction
    /// that removes the one straggler leaves nothing to trigger it), or
    /// when a participant was evicted and readmitted mid-round
    /// ([`readmit`](Self::readmit) drops it from the round's participant
    /// set — its new instance never saw the CHKPT and will never reply).
    /// The round must be abandoned and restarted. A round merely waiting on a
    /// slow or partitioned member is **not** wedged — its reply will
    /// arrive (or detection will evict it, producing this state).
    pub fn pending_wedged(&self) -> bool {
        let Some(p) = &self.pending else {
            return false;
        };
        p.participants
            .iter()
            .all(|&site| !(site == CENTRAL_SITE || self.mirrors.contains(&site)) || p.replied(site))
    }

    /// `init_CHKPT`: start a voting round proposing `proposal` ("chkpt =
    /// last on backup queue"). Any incomplete previous round is abandoned —
    /// the new round's commit will encapsulate it.
    pub fn begin(&mut self, proposal: VectorTimestamp) -> Vec<CheckpointMsg> {
        if self.pending.take().is_some() {
            self.rounds_abandoned += 1;
        }
        let round = self.next_round;
        self.next_round += 1;
        self.rounds_started += 1;
        let mut participants = self.mirrors.clone();
        participants.push(CENTRAL_SITE);
        self.pending = Some(PendingRound {
            round,
            proposal: proposal.clone(),
            participants,
            replies: Vec::new(),
        });
        let msg = ControlMsg::Chkpt { round, stamp: proposal, epoch: self.epoch, term: self.term };
        vec![CheckpointMsg::BroadcastToMirrors(msg.clone()), CheckpointMsg::ToLocalMain(msg)]
    }

    /// `CHKPT_REP`: record a participant's reply. When every expected
    /// participant (each mirror plus the central main unit, reporting as
    /// [`CENTRAL_SITE`]) has replied, compute `commit = min over replies`,
    /// record it, and emit the commit messages. The caller appends any
    /// adaptation directive and prunes the local backup queue.
    ///
    /// Replies for abandoned rounds are ignored, as are replies answering
    /// a different leadership `term` — round numbers restart across
    /// promotions, so a reply addressed to another coordinator can carry a
    /// round number that collides with one of ours, and counting it would
    /// split-brain the round.
    pub fn on_reply(
        &mut self,
        round: u64,
        site: SiteId,
        stamp: VectorTimestamp,
        term: u64,
    ) -> Option<(VectorTimestamp, Vec<CheckpointMsg>)> {
        if term != self.term {
            // Fenced: the reply answers a proposal from a different
            // coordinator. Not even sign-of-life evidence — its round
            // numbering belongs to another term's sequence.
            self.stale_term_replies += 1;
            return None;
        }
        // Any reply — even stale or duplicate — is a sign of life; record
        // the newest round this participant has answered.
        let newest = self.last_reply_round.entry(site).or_insert(0);
        *newest = (*newest).max(round);
        // Failure detection: replies are flowing from mirror `site` up to
        // `round`, so a *peer* mirror whose replies stop `suspect_after`
        // rounds earlier is gone. Only mirror replies serve as the
        // comparison baseline — they traverse the same two-hop pipeline, so
        // a cluster-wide backlog delays all of them alike, whereas the
        // central main unit's replies take a local shortcut and would make
        // healthy mirrors look laggy during bursts. (Consequence: a
        // single-mirror cluster has no detection baseline; exclusion there
        // needs an operator, as in the paper.)
        //
        // Only a reply to the *current* round is admissible evidence. When
        // a burst starts rounds faster than replies are consumed, the
        // coordinator can process a straggler's queued reply to round `r`
        // while a healthy peer's replies to rounds `r..r+k` are still
        // sitting unprocessed in the same queue — by `last_reply_round`
        // alone the healthy peer looks `k` rounds behind and gets evicted.
        // A current-round reply cannot be such an artifact: it proves the
        // reporter has drained its pipeline to the newest round, so a peer
        // whose newest answer is `suspect_after` rounds older genuinely
        // stopped answering.
        let current = self.pending.as_ref().is_some_and(|p| p.round == round);
        if self.suspect_after > 0 && site != CENTRAL_SITE && current {
            let mirrors = self.mirrors.clone();
            for other in mirrors {
                if other == site {
                    continue;
                }
                let last = self.last_reply_round.get(&other).copied().unwrap_or(0);
                if round.saturating_sub(last) >= self.suspect_after as u64 {
                    self.mirrors.retain(|&s| s != other);
                    self.failed.push(other);
                    self.newly_failed.push(other);
                }
            }
        }
        if site != CENTRAL_SITE && !self.mirrors.contains(&site) {
            return None; // reply from an excluded (failed) or unknown site
        }
        let pending = self.pending.as_mut()?;
        if pending.round != round {
            return None; // stale reply for an abandoned round
        }
        if pending.replied(site) {
            return None; // duplicate
        }
        pending.replies.push((site, stamp));

        // The round completes when every participant the CHKPT went to —
        // minus any evicted since — has replied. Membership is re-checked
        // per participant so an eviction mid-round stops gating completion,
        // while a mirror readmitted mid-round (not a participant) never
        // blocks a round it was never asked about.
        let mirrors = &self.mirrors;
        let complete = pending
            .participants
            .iter()
            .all(|&p| !(p == CENTRAL_SITE || mirrors.contains(&p)) || pending.replied(p));
        if !complete {
            return None;
        }
        let pending = self.pending.take().unwrap();
        let commit =
            pending.replies.iter().fold(pending.proposal.clone(), |acc, (_, s)| acc.meet(s));
        self.committed.merge(&commit);
        self.rounds_committed += 1;
        let msg = ControlMsg::Commit {
            round: pending.round,
            stamp: commit.clone(),
            epoch: self.epoch,
            term: self.term,
            adapt: None,
        };
        Some((
            commit,
            vec![CheckpointMsg::BroadcastToMirrors(msg.clone()), CheckpointMsg::ToLocalMain(msg)],
        ))
    }
}

/// Relay state machine running in a **mirror site's auxiliary unit**.
///
/// Per Figure 3: a `CHKPT` is forwarded to the local main unit; the main
/// unit's `CHKPT_REP` is forwarded to the central site if its stamp refers
/// to an event this site's backup history covers; a `COMMIT` prunes the
/// local backup queue and is forwarded to the main unit.
#[derive(Debug, Default)]
pub struct MirrorRelay {
    /// Commits applied (for statistics).
    pub commits_applied: u64,
    /// Commits ignored because they named events never seen here.
    pub commits_ignored: u64,
}

impl MirrorRelay {
    /// A fresh relay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle a `CHKPT` from the central site.
    pub fn on_chkpt(&mut self, msg: ControlMsg) -> Vec<CheckpointMsg> {
        debug_assert!(matches!(msg, ControlMsg::Chkpt { .. }));
        vec![CheckpointMsg::ToLocalMain(msg)]
    }

    /// Handle the local main unit's `CHKPT_REP`: forward to the central
    /// site if the stamp is covered by this site's backup history ("if
    /// chkpt_rep in backup queue").
    #[allow(clippy::too_many_arguments)]
    pub fn on_main_reply(
        &mut self,
        round: u64,
        site: SiteId,
        stamp: VectorTimestamp,
        monitor: MonitorReport,
        term: u64,
        backup: &BackupQueue,
    ) -> Vec<CheckpointMsg> {
        // The paper's guard ("if chkpt_rep in backup queue") suppresses
        // replies referencing events this site never held — except on a
        // *fresh* site (just started, or rejoined with seeded state): its
        // reply stamp is correct information even though its backup
        // history is empty, and suppressing it would lock the site out of
        // rounds until new traffic arrived.
        if backup.covers(&stamp) || stamp.is_zero() || backup.is_fresh() {
            vec![CheckpointMsg::ToCentral(ControlMsg::ChkptRep {
                round,
                site,
                stamp,
                monitor,
                term,
            })]
        } else {
            Vec::new()
        }
    }

    /// Handle a `COMMIT`: prune the backup queue if the committed event is
    /// known here, and forward the commit to the main unit either way (the
    /// main unit applies its own guard).
    pub fn on_commit(
        &mut self,
        msg: ControlMsg,
        backup: &mut BackupQueue,
    ) -> (usize, Vec<CheckpointMsg>) {
        let pruned = if let ControlMsg::Commit { stamp, .. } = &msg {
            if backup.covers(stamp) || stamp.is_zero() {
                self.commits_applied += 1;
                backup.prune(stamp)
            } else {
                // "If a unit receives a commit identifying an event no
                // longer in its backup, this event is ignored."
                self.commits_ignored += 1;
                0
            }
        } else {
            0
        };
        (pruned, vec![CheckpointMsg::ToLocalMain(msg)])
    }
}

/// Responder state machine running in every site's **main unit**.
///
/// Tracks the frontier of events the business logic has processed; on a
/// `CHKPT` it replies with `min{chkpt, last processed}`.
#[derive(Debug)]
pub struct MainUnitResponder {
    site: SiteId,
    processed: VectorTimestamp,
    committed: VectorTimestamp,
}

impl MainUnitResponder {
    /// A responder for the given site.
    pub fn new(site: SiteId) -> Self {
        MainUnitResponder {
            site,
            processed: VectorTimestamp::empty(),
            committed: VectorTimestamp::empty(),
        }
    }

    /// The site this responder reports as.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Record that the business logic processed an event with this stamp.
    pub fn record_processed(&mut self, stamp: &VectorTimestamp) {
        self.processed.merge(stamp);
    }

    /// Frontier of processed events.
    pub fn processed(&self) -> &VectorTimestamp {
        &self.processed
    }

    /// Last committed checkpoint this unit has seen.
    pub fn committed(&self) -> &VectorTimestamp {
        &self.committed
    }

    /// Handle a `CHKPT`: reply with `min{chkpt, last processed}` plus the
    /// caller-supplied monitor report, addressed to the local aux unit.
    /// The reply echoes the proposal's leadership term, so the coordinator
    /// it reaches can tell whether it was the one being answered.
    pub fn on_chkpt(&mut self, msg: &ControlMsg, monitor: MonitorReport) -> Option<ControlMsg> {
        if let ControlMsg::Chkpt { round, stamp, term, .. } = msg {
            let rep = stamp.meet(&self.processed);
            Some(ControlMsg::ChkptRep {
                round: *round,
                site: self.site,
                stamp: rep,
                monitor,
                term: *term,
            })
        } else {
            None
        }
    }

    /// Handle a `COMMIT`: advance the committed frontier (monotonically).
    pub fn on_commit(&mut self, msg: &ControlMsg) {
        if let ControlMsg::Commit { stamp, .. } = msg {
            self.committed.merge(stamp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventBody, FlightStatus};

    fn stamped(stream: u16, seq: u64) -> Event {
        let mut e = Event::new(stream, seq, 1, EventBody::Status(FlightStatus::EnRoute));
        e.stamp.advance(stream as usize, seq);
        e
    }

    fn vt(c: &[u64]) -> VectorTimestamp {
        VectorTimestamp::from_components(c.to_vec())
    }

    #[test]
    fn full_round_commits_minimum() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        let msgs = central.begin(vt(&[10, 5]));
        assert_eq!(msgs.len(), 2);
        assert!(central.round_in_flight());

        // Mirror 1 processed everything, mirror 2 lags, central main mid.
        assert!(central.on_reply(1, 1, vt(&[10, 5]), 0).is_none());
        assert!(central.on_reply(1, 2, vt(&[7, 5]), 0).is_none());
        let (commit, out) = central.on_reply(1, CENTRAL_SITE, vt(&[9, 4]), 0).unwrap();
        assert_eq!(commit, vt(&[7, 4]));
        assert_eq!(out.len(), 2);
        assert_eq!(central.committed(), &vt(&[7, 4]));
        assert_eq!(central.rounds_committed, 1);
        assert!(!central.round_in_flight());
    }

    #[test]
    fn duplicate_replies_are_ignored() {
        let mut central = CentralCheckpointer::new(vec![1]);
        central.begin(vt(&[3]));
        assert!(central.on_reply(1, 1, vt(&[3]), 0).is_none());
        assert!(central.on_reply(1, 1, vt(&[2]), 0).is_none(), "duplicate site reply");
        assert!(central.on_reply(1, CENTRAL_SITE, vt(&[3]), 0).is_some());
    }

    #[test]
    fn later_round_supersedes_incomplete_earlier_round() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.begin(vt(&[5]));
        assert!(central.on_reply(1, 1, vt(&[5]), 0).is_none());
        // Second round starts before the first completes.
        central.begin(vt(&[9]));
        assert_eq!(central.rounds_abandoned, 1);
        // Stale reply for round 1 is ignored.
        assert!(central.on_reply(1, 2, vt(&[5]), 0).is_none());
        assert!(central.on_reply(2, 1, vt(&[9]), 0).is_none());
        assert!(central.on_reply(2, 2, vt(&[8]), 0).is_none());
        let (commit, _) = central.on_reply(2, CENTRAL_SITE, vt(&[9]), 0).unwrap();
        assert_eq!(commit, vt(&[8]));
    }

    #[test]
    fn main_unit_caps_reply_at_its_processed_frontier() {
        let mut main = MainUnitResponder::new(3);
        main.record_processed(&vt(&[4, 2]));
        let chkpt = ControlMsg::Chkpt { round: 1, stamp: vt(&[10, 1]), epoch: 0, term: 0 };
        let rep = main.on_chkpt(&chkpt, MonitorReport::default()).unwrap();
        match rep {
            ControlMsg::ChkptRep { site, stamp, .. } => {
                assert_eq!(site, 3);
                assert_eq!(stamp, vt(&[4, 1]));
            }
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn mirror_relay_guards_reply_by_backup_coverage() {
        let mut relay = MirrorRelay::new();
        let mut backup = BackupQueue::new();
        backup.push(stamped(0, 3));
        // Covered stamp → forwarded to central.
        let out = relay.on_main_reply(1, 1, vt(&[2]), MonitorReport::default(), 0, &backup);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CheckpointMsg::ToCentral(ControlMsg::ChkptRep { .. })));
        // Uncovered stamp on a site WITH history → suppressed.
        let out = relay.on_main_reply(1, 1, vt(&[9]), MonitorReport::default(), 0, &backup);
        assert!(out.is_empty());
    }

    #[test]
    fn fresh_seeded_mirror_reply_is_not_suppressed() {
        // A rejoined mirror has a seeded (non-zero) processed frontier but
        // an empty, never-used backup queue; its replies must flow so it
        // can participate in rounds before new traffic arrives.
        let mut relay = MirrorRelay::new();
        let backup = BackupQueue::new();
        let out = relay.on_main_reply(5, 2, vt(&[500]), MonitorReport::default(), 0, &backup);
        assert_eq!(out.len(), 1, "fresh site must not be locked out of rounds");
    }

    #[test]
    fn mirror_relay_commit_prunes_and_forwards() {
        let mut relay = MirrorRelay::new();
        let mut backup = BackupQueue::new();
        backup.push(stamped(0, 1));
        backup.push(stamped(0, 2));
        backup.push(stamped(0, 3));
        let commit =
            ControlMsg::Commit { round: 1, stamp: vt(&[2]), epoch: 0, term: 0, adapt: None };
        let (pruned, out) = relay.on_commit(commit, &mut backup);
        assert_eq!(pruned, 2);
        assert_eq!(backup.len(), 1);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], CheckpointMsg::ToLocalMain(ControlMsg::Commit { .. })));
        assert_eq!(relay.commits_applied, 1);
    }

    #[test]
    fn unknown_commit_is_ignored_but_still_forwarded() {
        let mut relay = MirrorRelay::new();
        let mut backup = BackupQueue::new();
        backup.push(stamped(0, 1));
        // A commit on a stream this site never saw.
        let commit =
            ControlMsg::Commit { round: 1, stamp: vt(&[0, 42]), epoch: 0, term: 0, adapt: None };
        let (pruned, out) = relay.on_commit(commit, &mut backup);
        assert_eq!(pruned, 0);
        assert_eq!(backup.len(), 1);
        assert_eq!(relay.commits_ignored, 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn committed_frontier_is_monotone_under_reordering() {
        let mut main = MainUnitResponder::new(1);
        main.on_commit(&ControlMsg::Commit {
            round: 2,
            stamp: vt(&[5, 5]),
            epoch: 0,
            term: 0,
            adapt: None,
        });
        // An older commit arriving late cannot regress the frontier.
        main.on_commit(&ControlMsg::Commit {
            round: 1,
            stamp: vt(&[3, 9]),
            epoch: 0,
            term: 0,
            adapt: None,
        });
        assert_eq!(main.committed(), &vt(&[5, 9]));
    }

    #[test]
    fn silent_mirror_is_declared_failed_and_commits_resume() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.set_suspect_after(3);
        // Mirror 2 replies once, then goes silent; mirror 1 keeps lagging
        // in-flight by one round, which must NOT trip detection.
        for i in 1..=5u64 {
            central.begin(vt(&[i]));
            central.on_reply(central.rounds_started, 1, vt(&[i]), 0);
            if i == 1 {
                central.on_reply(central.rounds_started, 2, vt(&[1]), 0);
            }
        }
        // Mirror 1's reply to round 5 arrived while mirror 2's newest is
        // round 1: lag 4 ≥ 3 → failed.
        assert_eq!(central.take_newly_failed(), vec![2]);
        assert_eq!(central.mirrors(), &[1]);
        // The next round commits with the survivor alone.
        central.begin(vt(&[9]));
        assert!(central.on_reply(central.rounds_started, 1, vt(&[9]), 0).is_none());
        let done = central.on_reply(central.rounds_started, CENTRAL_SITE, vt(&[9]), 0);
        assert!(done.is_some(), "commit must resume among survivors");
        // A straggler reply from the failed site is ignored.
        central.begin(vt(&[10]));
        assert!(central.on_reply(central.rounds_started, 2, vt(&[10]), 0).is_none());
        assert!(central.on_reply(central.rounds_started, 1, vt(&[10]), 0).is_none());
        assert!(central.on_reply(central.rounds_started, CENTRAL_SITE, vt(&[10]), 0).is_some());
    }

    #[test]
    fn backlogged_mirror_is_not_declared_failed() {
        // A mirror whose replies trail by one round (normal in-flight skew)
        // survives detection indefinitely.
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.set_suspect_after(3);
        for i in 1..=20u64 {
            central.begin(vt(&[i]));
            central.on_reply(central.rounds_started, 1, vt(&[i]), 0);
            if i > 1 {
                // Mirror 2 answers the *previous* round, one behind.
                central.on_reply(central.rounds_started - 1, 2, vt(&[i - 1]), 0);
            }
        }
        assert!(central.take_newly_failed().is_empty());
        assert_eq!(central.mirrors(), &[1, 2]);
    }

    #[test]
    fn stale_queued_reply_is_not_failure_evidence() {
        // Burst scenario: rounds 1..=6 start back-to-back, and the
        // coordinator happens to consume mirror 2's queued reply to an old
        // round while mirror 1's equally queued replies are still
        // unprocessed. By newest-reply bookkeeping alone mirror 1 looks 4
        // rounds behind — but that lag is a processing-order artifact, not
        // silence, and must not evict it.
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.set_suspect_after(3);
        for i in 1..=6u64 {
            central.begin(vt(&[i]));
        }
        // Mirror 2's reply to round 4 drains first (stale: pending is 6).
        assert!(central.on_reply(4, 2, vt(&[4]), 0).is_none());
        assert!(central.take_newly_failed().is_empty(), "stale reply evicted a healthy peer");
        assert_eq!(central.mirrors(), &[1, 2]);
        // Mirror 1's queued replies drain next; its answer to the current
        // round IS admissible evidence, and mirror 2 (newest reply 4, lag
        // 2 < 3) still survives.
        for i in 1..=6u64 {
            central.on_reply(i, 1, vt(&[i]), 0);
        }
        assert!(central.take_newly_failed().is_empty());
        // Only when mirror 2 stays silent while current rounds keep being
        // answered does detection fire.
        for i in 7..=7u64 {
            central.begin(vt(&[i]));
            central.on_reply(i, 1, vt(&[i]), 0);
        }
        assert_eq!(central.take_newly_failed(), vec![2]);
    }

    #[test]
    fn readmitted_mirror_participates_again() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.set_suspect_after(2);
        for i in 1..=3u64 {
            central.begin(vt(&[i]));
            central.on_reply(central.rounds_started, 1, vt(&[i]), 0);
        }
        assert_eq!(central.take_newly_failed(), vec![2]);
        central.readmit(2);
        assert_eq!(central.mirrors(), &[1, 2]);
        // The in-flight round now completes with both mirrors replying
        // (the readmitted site got a fresh lag baseline).
        central.on_reply(central.rounds_started, 2, vt(&[3]), 0);
        assert!(central.on_reply(central.rounds_started, CENTRAL_SITE, vt(&[3]), 0).is_some());
        assert!(central.failed.is_empty(), "failed: {:?}", central.failed);
    }

    #[test]
    fn evict_then_readmit_mid_round_leaves_round_wedged_not_stuck() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.begin(vt(&[5]));
        assert!(central.on_reply(1, 1, vt(&[5]), 0).is_none());
        assert!(central.on_reply(1, CENTRAL_SITE, vt(&[5]), 0).is_none());
        assert!(!central.pending_wedged(), "mirror 2's reply is still possible");
        // Mirror 2 dies and is replaced mid-round: its new instance never
        // saw round 1's CHKPT, so no reply for this round will ever come.
        assert!(central.declare_failed(2));
        central.readmit(2);
        assert_eq!(central.mirrors(), &[1, 2]);
        assert!(central.round_in_flight());
        assert!(
            central.pending_wedged(),
            "a readmitted participant must not gate a round begun before its readmission"
        );
        // The wedged round is restartable and the fresh one commits with
        // both mirrors.
        central.begin(vt(&[6]));
        assert!(central.on_reply(2, 1, vt(&[6]), 0).is_none());
        assert!(central.on_reply(2, 2, vt(&[6]), 0).is_none());
        assert!(central.on_reply(2, CENTRAL_SITE, vt(&[6]), 0).is_some());
    }

    #[test]
    fn rounds_carry_the_membership_epoch() {
        let mut central = CentralCheckpointer::new(vec![1]);
        central.set_epoch(7);
        let msgs = central.begin(vt(&[3]));
        match &msgs[0] {
            CheckpointMsg::BroadcastToMirrors(m) => assert_eq!(m.epoch(), Some(7)),
            m => panic!("unexpected {m:?}"),
        }
        central.on_reply(1, 1, vt(&[3]), 0);
        let (_, out) = central.on_reply(1, CENTRAL_SITE, vt(&[3]), 0).unwrap();
        match &out[0] {
            CheckpointMsg::BroadcastToMirrors(m) => assert_eq!(m.epoch(), Some(7)),
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn retired_mirror_stops_gating_rounds_without_failure_marking() {
        let mut central = CentralCheckpointer::new(vec![1, 2]);
        central.begin(vt(&[5]));
        assert!(central.on_reply(1, 1, vt(&[5]), 0).is_none());
        assert!(central.on_reply(1, CENTRAL_SITE, vt(&[5]), 0).is_none());
        // Mirror 2 is gracefully retired mid-round: not a failure, but the
        // round it was gating can no longer complete on a future reply.
        assert!(central.retire(2));
        assert_eq!(central.mirrors(), &[1]);
        assert!(central.failed.is_empty(), "retire is not failure");
        assert!(central.pending_wedged(), "retire removed the last awaited participant");
        // The coordinator restarts; the fresh round commits among
        // survivors, and a straggler reply from the retired site is inert.
        central.begin(vt(&[6]));
        assert!(central.on_reply(2, 2, vt(&[6]), 0).is_none(), "retired site's reply ignored");
        assert!(central.on_reply(2, 1, vt(&[6]), 0).is_none());
        assert!(central.on_reply(2, CENTRAL_SITE, vt(&[6]), 0).is_some());
    }

    #[test]
    fn admitted_mirror_joins_at_next_round() {
        let mut central = CentralCheckpointer::new(vec![1]);
        central.begin(vt(&[4]));
        // Site 2 is admitted while round 1 is in flight: it must not gate
        // round 1 (it never saw the proposal) but participates from the
        // next round on.
        central.readmit(2);
        assert!(central.on_reply(1, 1, vt(&[4]), 0).is_none());
        assert!(
            central.on_reply(1, CENTRAL_SITE, vt(&[4]), 0).is_some(),
            "round 1 commits without 2"
        );
        central.begin(vt(&[8]));
        assert!(central.on_reply(2, 1, vt(&[8]), 0).is_none());
        assert!(central.on_reply(2, CENTRAL_SITE, vt(&[8]), 0).is_none(), "now gated on site 2");
        assert!(central.on_reply(2, 2, vt(&[8]), 0).is_some());
    }

    #[test]
    fn replies_from_another_term_are_fenced() {
        let mut central = CentralCheckpointer::new(vec![1]);
        central.set_term(3);
        let msgs = central.begin(vt(&[4]));
        match &msgs[0] {
            CheckpointMsg::BroadcastToMirrors(m) => assert_eq!(m.term(), 3),
            m => panic!("unexpected {m:?}"),
        }
        // A reply echoing another coordinator's term is discarded outright:
        // its round numbering belongs to a different sequence, so even a
        // matching (round, site) must not be counted.
        assert!(central.on_reply(1, 1, vt(&[4]), 2).is_none());
        assert_eq!(central.stale_term_replies, 1);
        // The same site answering *this* term's proposal completes the
        // round as usual.
        assert!(central.on_reply(1, 1, vt(&[4]), 3).is_none());
        let done = central.on_reply(1, CENTRAL_SITE, vt(&[4]), 3);
        assert!(done.is_some(), "current-term replies commit the round");
        match &done.unwrap().1[0] {
            CheckpointMsg::BroadcastToMirrors(m) => assert_eq!(m.term(), 3),
            m => panic!("unexpected {m:?}"),
        }
        // The term is monotone: an attempt to step back is ignored.
        central.set_term(1);
        assert_eq!(central.term(), 3);
    }

    #[test]
    fn fresh_site_with_zero_stamp_still_replies() {
        let relay_backup = BackupQueue::new();
        let mut relay = MirrorRelay::new();
        let out = relay.on_main_reply(
            1,
            2,
            VectorTimestamp::empty(),
            MonitorReport::default(),
            0,
            &relay_backup,
        );
        assert_eq!(out.len(), 1, "zero stamp must not deadlock a fresh site");
    }
}
