//! The one flight-id hash the whole system routes by.
//!
//! Three layers place flights into buckets: the intra-site shard map
//! (`mirror-ede`'s `ShardMap`), the cluster-level partition map
//! ([`crate::partition::PartitionMap`]), and the flight-keyed hash tables
//! on the apply and edge-subscription hot paths. They must never disagree
//! on how a flight id mixes — a divergence would be invisible until a
//! flight's events and its subscribers landed in different buckets — so
//! the Fibonacci multiplicative hash lives here, once, and every layer
//! derives from it.
//!
//! Two post-mixes are exposed because the two consumers want different
//! bits:
//!
//! * [`fib_slot`] keeps the **high** bits (the well-mixed ones after a
//!   multiply) and reduces them modulo the bucket count — the classic
//!   Fibonacci bucketing for shard/partition maps;
//! * [`fib_mix64`] xor-folds the high bits into the low bits, producing a
//!   full-width value whose **low** bits are usable — what a hash table
//!   that masks with its capacity needs.

/// 2^64 / φ, the Fibonacci hashing constant.
pub const FIB_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Full-width mix: multiply and fold the well-mixed high bits into the
/// low bits. Use for hash-table hashers (which index with low bits).
#[inline]
pub fn fib_mix64(v: u64) -> u64 {
    let h = v.wrapping_mul(FIB_MULT);
    h ^ (h >> 32)
}

/// Bucket assignment: multiply, keep the high bits, reduce modulo
/// `buckets` (exact for non-power-of-two counts). Use for shard and
/// partition maps. `buckets` is clamped to at least 1.
#[inline]
pub fn fib_slot(key: u64, buckets: usize) -> usize {
    ((key.wrapping_mul(FIB_MULT) >> 32) % buckets.max(1) as u64) as usize
}

/// Hasher for flight-id keys: one Fibonacci multiply with an xor-fold.
/// Flight ids are small dense integers, and flight-keyed lookups sit on
/// the per-event apply and subscription-fan-out hot paths — SipHash
/// (std's default) costs more there than the field updates it guards.
#[derive(Clone, Copy, Default)]
pub struct FlightIdHasher(u64);

impl std::hash::Hasher for FlightIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (never hit by u32 keys): byte-wise FNV-style mix.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FIB_MULT);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = fib_mix64(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = fib_mix64(v);
    }
}

/// [`std::hash::BuildHasher`] for flight-keyed tables.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BuildFlightHasher;

impl std::hash::BuildHasher for BuildFlightHasher {
    type Hasher = FlightIdHasher;
    fn build_hasher(&self) -> FlightIdHasher {
        FlightIdHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    #[test]
    fn fib_slot_is_deterministic_and_in_range() {
        for buckets in [1usize, 2, 3, 8, 64] {
            for key in 0..1000u64 {
                let s = fib_slot(key, buckets);
                assert!(s < buckets);
                assert_eq!(s, fib_slot(key, buckets), "stable");
            }
        }
        assert_eq!(fib_slot(42, 0), 0, "clamped to one bucket");
    }

    #[test]
    fn fib_slot_spreads_sequential_keys() {
        // Sequential flight ids must not all land in one bucket (the whole
        // point of the multiplicative mix).
        let mut counts = [0usize; 8];
        for key in 0..800u64 {
            counts[fib_slot(key, 8)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 2 * min.max(1), "balanced: {counts:?}");
    }

    #[test]
    fn mix_matches_hasher_write_u32() {
        let mut h = FlightIdHasher::default();
        77u32.hash(&mut h);
        assert_eq!(h.finish(), fib_mix64(77));
    }

    #[test]
    fn mix_differs_from_slot_projection() {
        // The two post-mixes serve different consumers; sanity-check they
        // both derive from the same multiply.
        let v = 123u64;
        let product = v.wrapping_mul(FIB_MULT);
        assert_eq!(fib_mix64(v), product ^ (product >> 32));
        assert_eq!(fib_slot(v, 64), ((product >> 32) % 64) as usize);
    }
}
