//! Cluster-level content partitioning: flight-id hash slots → mirror groups.
//!
//! Full replication caps cluster capacity at one machine's worth of
//! flights — every site applies every event and holds every flight. The
//! [`PartitionMap`] splits the flight space into [`PARTITION_SLOTS`]
//! Fibonacci-hashed slots (the same mix the intra-site shard map uses, see
//! [`crate::hashing`]) and assigns each slot to a **mirror group**: an
//! independent central + mirrors that replicate only their share of the
//! flight space. An 4-group cluster holds ~4× the flights and applies ~4×
//! the aggregate update rate at flat per-site memory.
//!
//! The map is epoch-stamped and distributed the same way adaptation
//! parameters are: piggybacked on checkpoint COMMIT control frames and
//! fenced on receipt — a frame carrying `epoch <= current` is stale and
//! ignored, exactly like membership epochs. Slot migration bumps the
//! epoch, so a mirror that reconnects mid-rebalance converges to the
//! newest assignment no matter which group's commit reaches it first.

use crate::event::FlightId;
use crate::hashing::fib_slot;
use serde::{Deserialize, Serialize};

/// Identifies a mirror group (an independent central + mirrors owning a
/// subset of the flight space).
pub type GroupId = u16;

/// Number of hash slots in every partition map. Fixed (not per-map) so
/// two maps always agree on which slot a flight hashes to; only the
/// slot → group assignment varies. 64 slots over ≤16 groups keeps
/// per-group slot counts balanced while making migration quanta small.
pub const PARTITION_SLOTS: usize = 64;

/// Epoch-stamped assignment of flight-id hash slots to mirror groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMap {
    epoch: u64,
    slots: Vec<GroupId>,
}

impl PartitionMap {
    /// The unpartitioned map: every slot owned by group 0, epoch 0.
    /// This is what an un-configured cluster implicitly runs under.
    pub fn single() -> Self {
        Self { epoch: 0, slots: vec![0; PARTITION_SLOTS] }
    }

    /// Round-robin the slots across `groups` groups (epoch 1 so it fences
    /// out the implicit [`PartitionMap::single`]). `groups` is clamped to
    /// at least 1.
    pub fn uniform(groups: u16) -> Self {
        let groups = groups.max(1);
        Self { epoch: 1, slots: (0..PARTITION_SLOTS as u16).map(|s| s % groups).collect() }
    }

    /// The fencing epoch of this assignment.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of groups referenced by the map (highest assigned id + 1).
    pub fn groups(&self) -> usize {
        self.slots.iter().copied().max().unwrap_or(0) as usize + 1
    }

    /// The slot a flight hashes to. Map-independent: every map agrees.
    pub fn slot_of(flight: FlightId) -> usize {
        fib_slot(flight as u64, PARTITION_SLOTS)
    }

    /// The group that owns `flight` under this map.
    pub fn group_of(&self, flight: FlightId) -> GroupId {
        self.slots[Self::slot_of(flight)]
    }

    /// The group that owns `slot` under this map.
    pub fn group_of_slot(&self, slot: usize) -> GroupId {
        self.slots[slot]
    }

    /// Reassign `slot` to `group`, bumping the epoch. Returns the previous
    /// owner. This is the only mutation — maps otherwise travel by value.
    pub fn assign(&mut self, slot: usize, group: GroupId) -> GroupId {
        let prev = self.slots[slot];
        self.slots[slot] = group;
        self.epoch += 1;
        prev
    }

    /// Slots owned by `group` under this map.
    pub fn slots_of(&self, group: GroupId) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().enumerate().filter(move |(_, g)| **g == group).map(|(s, _)| s)
    }

    /// Raw slot table (one [`GroupId`] per slot), for wire encoding.
    pub fn slot_table(&self) -> &[GroupId] {
        &self.slots
    }

    /// Rebuild from wire parts. Slot tables of the wrong length are
    /// normalized (truncated / zero-extended) so a malformed frame cannot
    /// panic the routing path.
    pub fn from_parts(epoch: u64, mut slots: Vec<GroupId>) -> Self {
        slots.resize(PARTITION_SLOTS, 0);
        Self { epoch, slots }
    }

    /// Bytes this map occupies inside a control frame (epoch + slot table).
    pub fn wire_size(&self) -> usize {
        8 + 2 + self.slots.len() * 2
    }

    /// Epoch-fenced adoption: replace `current` with `incoming` only if it
    /// is strictly newer. Returns whether the map changed. This is the one
    /// rule every receiver applies, so stale frames from a lagging group
    /// can never roll back a migration.
    pub fn adopt(current: &mut Option<PartitionMap>, incoming: &PartitionMap) -> bool {
        match current {
            Some(cur) if incoming.epoch <= cur.epoch => false,
            _ => {
                *current = Some(incoming.clone());
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_groups_evenly() {
        let pm = PartitionMap::uniform(4);
        assert_eq!(pm.groups(), 4);
        for g in 0..4u16 {
            assert_eq!(pm.slots_of(g).count(), PARTITION_SLOTS / 4);
        }
    }

    #[test]
    fn slot_of_matches_shard_style_hash() {
        for f in 0..500u32 {
            assert_eq!(
                PartitionMap::slot_of(f),
                crate::hashing::fib_slot(f as u64, PARTITION_SLOTS)
            );
        }
    }

    #[test]
    fn assign_bumps_epoch_and_returns_prev() {
        let mut pm = PartitionMap::uniform(2);
        let e0 = pm.epoch();
        let prev = pm.assign(3, 1);
        assert_eq!(prev, 3 % 2);
        assert_eq!(pm.epoch(), e0 + 1);
        assert_eq!(pm.group_of_slot(3), 1);
    }

    #[test]
    fn adopt_is_epoch_fenced() {
        let mut cur = None;
        let newer = PartitionMap::uniform(2);
        assert!(PartitionMap::adopt(&mut cur, &newer));
        // Same epoch: stale.
        assert!(!PartitionMap::adopt(&mut cur, &newer));
        // Older epoch: stale.
        let older = PartitionMap::single();
        assert!(!PartitionMap::adopt(&mut cur, &older));
        // Strictly newer: adopted.
        let mut bumped = newer.clone();
        bumped.assign(0, 1);
        assert!(PartitionMap::adopt(&mut cur, &bumped));
        assert_eq!(cur.unwrap().epoch(), bumped.epoch());
    }

    #[test]
    fn from_parts_normalizes_length() {
        let pm = PartitionMap::from_parts(7, vec![1, 2]);
        assert_eq!(pm.epoch(), 7);
        assert_eq!(pm.slot_table().len(), PARTITION_SLOTS);
        assert_eq!(pm.group_of_slot(0), 1);
        assert_eq!(pm.group_of_slot(63), 0);
    }

    #[test]
    fn single_is_all_group_zero() {
        let pm = PartitionMap::single();
        assert_eq!(pm.groups(), 1);
        for f in 0..100u32 {
            assert_eq!(pm.group_of(f), 0);
        }
    }
}
