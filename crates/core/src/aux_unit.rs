//! The auxiliary unit — the mirroring half of every site.
//!
//! §3.1: each site is split into a *main unit* (the Event Derivation
//! Engine, i.e. business logic — provided by `mirror-ede`) and an
//! *auxiliary unit* implementing mirroring. Three tasks execute within the
//! central site's auxiliary unit:
//!
//! 1. the **receiving task** retrieves events from the incoming streams,
//!    timestamps them, applies the semantic rules, and places survivors on
//!    the ready queue;
//! 2. the **sending task** removes events from the ready queue, mirrors
//!    them onto all outgoing channels, forwards them to the main unit, and
//!    keeps a copy in the backup queue;
//! 3. the **control task** runs checkpointing and adaptation.
//!
//! [`AuxUnit`] composes the three tasks into one deterministic step
//! machine: every [`AuxInput`] yields a list of [`AuxAction`]s. The *same*
//! state machine runs threaded under `mirror-runtime` (each task a thread
//! sharing the unit behind a lock) and single-stepped under `mirror-sim`
//! (actions costed onto virtual CPU/links), which is what makes the
//! experiment results attributable to the algorithms rather than to two
//! divergent implementations.

use std::sync::Arc;

use crate::adapt::{
    AdaptDecision, AdaptationController, MonitorReport, ScaleDecision, ScalePolicy,
};
use crate::checkpoint::{CentralCheckpointer, CheckpointMsg, MirrorRelay};
use crate::control::{AdaptDirective, ControlMsg};
use crate::event::Event;
use crate::metrics::AuxCounters;
use crate::mirrorfn::{MirrorFn, MirrorFnKind};
use crate::params::MirrorParams;
use crate::partition::PartitionMap;
use crate::queue::{BackupQueue, ReadyQueue};
use crate::rules::RuleSet;
use crate::status::StatusTable;
use crate::timestamp::VectorTimestamp;

pub use crate::control::{SiteId, CENTRAL_SITE};

/// Input consumed by the auxiliary unit's step function.
#[derive(Debug, Clone, PartialEq)]
pub enum AuxInput {
    /// A data event: from a source (central site) or from the central
    /// site's mirroring channel (mirror site). Shared (`Arc`) so the same
    /// allocation can flow through channels, queues and transports without
    /// deep copies; at ingress the `Arc` is typically unique and the unit
    /// reclaims it without copying.
    Data(Arc<Event>),
    /// A control-channel message (checkpoint traffic; at the central site
    /// this includes `ChkptRep`s relayed from mirrors and from the local
    /// main unit).
    Control(ControlMsg),
    /// Drain the ready queue even if a coalescing watermark has not been
    /// reached (end of stream, or the sending task waking up idle).
    Flush,
}

/// Output action produced by the step function; the embedding runtime
/// translates these into channel sends / simulator events.
#[derive(Debug, Clone, PartialEq)]
pub enum AuxAction {
    /// Put this event on every outgoing mirroring (data) channel. The
    /// `Arc` is shared with the backup queue's retained copy: fanning the
    /// event out to N mirrors plus retention costs reference-count bumps,
    /// not N+1 deep clones. `idx` is the monotone send index the backup
    /// queue assigned on retention — the durable name of this send, shared
    /// by retransmission ([`AuxUnit::retransmit_from`]) and by write-ahead
    /// journaling (`mirror-store`), so a journal entry and the in-memory
    /// retained copy always agree on identity.
    Mirror {
        /// Send index assigned by the backup queue (1, 2, 3… in push order).
        idx: u64,
        /// The mirrored event, sharing its allocation with the backup queue.
        event: Arc<Event>,
    },
    /// Deliver this event to the local main unit (regular processing path).
    ForwardToMain(Arc<Event>),
    /// Send a control message to every mirror site's auxiliary unit.
    ControlToMirrors(ControlMsg),
    /// Send a control message to the central site's auxiliary unit.
    ControlToCentral(ControlMsg),
    /// Deliver a control message to the local main unit.
    ControlToMain(ControlMsg),
    /// The unit adopted a new parameter set / mirroring function (either by
    /// local decision at the central site or via a piggybacked directive);
    /// surfaced so embeddings can log/observe reconfiguration.
    Reconfigured(MirrorParams),
    /// The checkpoint coordinator declared a mirror failed (it missed
    /// several consecutive rounds); embeddings should stop routing client
    /// requests and mirroring traffic to it.
    MirrorFailed(SiteId),
    /// The central adaptation controller's [`ScalePolicy`] directs a
    /// capacity change (spawn or retire a mirror). Decided centrally once
    /// per checkpoint round, like every other adaptation; the embedding
    /// (which owns site lifecycles) executes it.
    ScaleDirective(ScaleDecision),
}

/// Role-specific state of an auxiliary unit.
#[allow(clippy::large_enum_variant)] // exactly one Role per site, boxed state not worth the indirection
enum Role {
    /// The central (primary) site: coordinates checkpoints and adaptation.
    Central { checkpointer: CentralCheckpointer, adapt: AdaptationController },
    /// A secondary mirror site: relays checkpoint traffic.
    Mirror { relay: MirrorRelay },
}

/// The auxiliary unit of one site.
pub struct AuxUnit {
    site: SiteId,
    role: Role,
    ready: ReadyQueue,
    backup: BackupQueue,
    status: StatusTable,
    rules: RuleSet,
    mirror_fn: Box<dyn MirrorFn>,
    /// Forward-path customization (`set_fwd`): filters/transforms the
    /// events handed to the local main unit. Default: pass everything.
    fwd_fn: Box<dyn MirrorFn>,
    params: MirrorParams,
    /// The central receiving task's stamping clock: merges every incoming
    /// event's (stream, seq) so each stamped event carries the frontier of
    /// everything received before it.
    clock: VectorTimestamp,
    /// Data events processed since the last checkpoint was initiated (the
    /// paper invokes checkpointing "at a constant frequency of once per 50
    /// processed events").
    processed_since_chkpt: u32,
    /// Pending client requests at this site (set by the embedding server;
    /// reported to the adaptation controller).
    pending_requests: u64,
    /// Membership epoch this unit has most recently observed: at the
    /// central site the epoch it stamps onto rounds, at a mirror the
    /// newest epoch seen on CHKPT/COMMIT traffic.
    membership_epoch: u64,
    /// Leadership term this unit has most recently observed. At the
    /// central site this is the term it coordinates under (mirrored into
    /// the checkpointer, which stamps it onto CHKPT/COMMIT); at a mirror
    /// it is the newest term seen on coordinator traffic, and frames
    /// carrying an older term are fenced out (see
    /// [`handle`](Self::handle)).
    leader_term: u64,
    /// Heartbeat threshold in idle sending-task wakeups (central site,
    /// `0` = disabled): after this many consecutive
    /// [`idle_checkpoint`](Self::idle_checkpoint) calls with nothing to
    /// commit, start a checkpoint round anyway so mirrors watching
    /// control-channel cadence can tell an idle coordinator from a dead
    /// one.
    heartbeat_after: u32,
    /// Consecutive idle wakeups with no round to start.
    heartbeat_idle_ticks: u32,
    /// Cluster partition map this unit has adopted, when the cluster runs
    /// in partitioned mode (`None` = classic full replication). Fenced on
    /// the map's own epoch, independently of the params generation —
    /// exactly the membership-epoch discipline. At the coordinator the
    /// current map rides every COMMIT, so mirrors (including late joiners)
    /// converge to the newest assignment.
    partition: Option<PartitionMap>,
    counters: AuxCounters,
}

impl AuxUnit {
    /// Create the central site's auxiliary unit, mirroring to `mirrors`.
    pub fn central(mirrors: Vec<SiteId>, params: MirrorParams) -> Self {
        AuxUnit {
            site: CENTRAL_SITE,
            role: Role::Central {
                checkpointer: CentralCheckpointer::new(mirrors),
                adapt: AdaptationController::new(params.clone()),
            },
            ready: ReadyQueue::new(),
            backup: BackupQueue::new(),
            status: StatusTable::new(),
            rules: RuleSet::new(),
            mirror_fn: Box::new(crate::mirrorfn::IndependentMirror),
            fwd_fn: Box::new(crate::mirrorfn::IndependentMirror),
            params,
            clock: VectorTimestamp::empty(),
            processed_since_chkpt: 0,
            pending_requests: 0,
            membership_epoch: 0,
            leader_term: 0,
            heartbeat_after: 0,
            heartbeat_idle_ticks: 0,
            partition: None,
            counters: AuxCounters::default(),
        }
    }

    /// Create a mirror site's auxiliary unit.
    pub fn mirror(site: SiteId, params: MirrorParams) -> Self {
        assert_ne!(site, CENTRAL_SITE, "mirror sites are numbered from 1");
        AuxUnit {
            site,
            role: Role::Mirror { relay: MirrorRelay::new() },
            ready: ReadyQueue::new(),
            backup: BackupQueue::new(),
            status: StatusTable::new(),
            rules: RuleSet::new(),
            mirror_fn: Box::new(crate::mirrorfn::IndependentMirror),
            fwd_fn: Box::new(crate::mirrorfn::IndependentMirror),
            params,
            clock: VectorTimestamp::empty(),
            processed_since_chkpt: 0,
            pending_requests: 0,
            membership_epoch: 0,
            leader_term: 0,
            heartbeat_after: 0,
            heartbeat_idle_ticks: 0,
            partition: None,
            counters: AuxCounters::default(),
        }
    }

    /// This unit's site id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Is this the central (coordinating) unit?
    pub fn is_central(&self) -> bool {
        matches!(self.role, Role::Central { .. })
    }

    /// Current parameter set.
    pub fn params(&self) -> &MirrorParams {
        &self.params
    }

    /// Install a new parameter set directly (`set_params`). At the central
    /// site this also re-baselines the adaptation controller.
    pub fn set_params(&mut self, mut params: MirrorParams) {
        params.generation = self.params.generation + 1;
        if let Role::Central { adapt, .. } = &mut self.role {
            adapt.set_baseline(params.clone());
        }
        self.params = params;
    }

    /// Install a new rule set (the Table-1 `set_overwrite` /
    /// `set_complex_seq` / `set_complex_tuple` calls mutate it through
    /// [`rules_mut`](Self::rules_mut)).
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// Mutable access to the semantic rule set.
    pub fn rules_mut(&mut self) -> &mut RuleSet {
        &mut self.rules
    }

    /// The semantic rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Install a custom mirroring function (`set_mirror`). Any events the
    /// outgoing function had buffered (partial coalescing runs) are
    /// dropped from *this* call's perspective — call
    /// [`handle`](Self::handle) with [`AuxInput::Flush`] first if they
    /// must be released; the adaptation path does this automatically.
    pub fn set_mirror_fn(&mut self, f: Box<dyn MirrorFn>) {
        self.mirror_fn = f;
    }

    /// Install a custom forwarding function (`set_fwd`): it decides which
    /// events the local main unit receives.
    pub fn set_fwd_fn(&mut self, f: Box<dyn MirrorFn>) {
        self.fwd_fn = f;
    }

    /// Install a named mirroring configuration: send-path function,
    /// receive-path rules, and parameters together.
    pub fn install_kind(&mut self, kind: MirrorFnKind) {
        self.mirror_fn = kind.build();
        self.rules = kind.rules();
        let p = kind.params(&self.params);
        self.set_params(p);
    }

    /// The adaptation controller (central site only).
    pub fn adaptation_mut(&mut self) -> Option<&mut AdaptationController> {
        match &mut self.role {
            Role::Central { adapt, .. } => Some(adapt),
            Role::Mirror { .. } => None,
        }
    }

    /// Update the pending-client-requests gauge (a monitored variable).
    pub fn set_pending_requests(&mut self, n: u64) {
        self.pending_requests = n;
    }

    /// Current monitored-variable snapshot for this site.
    pub fn monitor_report(&self) -> MonitorReport {
        MonitorReport {
            ready_len: self.ready.len() as u64,
            backup_len: self.backup.len() as u64,
            pending_requests: self.pending_requests,
        }
    }

    /// Counters for experiments.
    pub fn counters(&self) -> AuxCounters {
        self.counters
    }

    /// Ready-queue length (monitored variable).
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Backup-queue length (monitored variable).
    pub fn backup_len(&self) -> usize {
        self.backup.len()
    }

    /// The receiving task's stamping clock frontier.
    pub fn clock(&self) -> &VectorTimestamp {
        &self.clock
    }

    /// Readmit a previously failed mirror into checkpoint rounds (central
    /// site only; call after the mirror's state has been re-seeded).
    pub fn readmit_mirror(&mut self, site: SiteId) {
        if let Role::Central { checkpointer, .. } = &mut self.role {
            checkpointer.readmit(site);
        }
    }

    /// Record a membership change: at the central site, `epoch` is stamped
    /// onto every subsequent CHKPT/COMMIT; at a mirror this is normally
    /// learned from control traffic instead.
    pub fn set_membership_epoch(&mut self, epoch: u64) {
        self.membership_epoch = self.membership_epoch.max(epoch);
        if let Role::Central { checkpointer, .. } = &mut self.role {
            checkpointer.set_epoch(self.membership_epoch);
        }
    }

    /// The membership epoch this unit most recently observed: at the
    /// central site the epoch it stamps onto rounds, at a mirror the
    /// newest epoch carried by CHKPT/COMMIT traffic.
    pub fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    /// Adopt a leadership term (monotone — a lower value is ignored). At
    /// the central site the term is stamped onto every subsequent
    /// CHKPT/COMMIT and required of every accepted reply; a promoted
    /// coordinator calls this with the bumped term before serving. At a
    /// mirror it raises the fencing floor (normally learned from control
    /// traffic instead).
    pub fn set_leader_term(&mut self, term: u64) {
        self.leader_term = self.leader_term.max(term);
        if let Role::Central { checkpointer, .. } = &mut self.role {
            checkpointer.set_term(self.leader_term);
        }
    }

    /// The leadership term this unit most recently observed (coordinates
    /// under, at the central site).
    pub fn leader_term(&self) -> u64 {
        self.leader_term
    }

    /// Install (or update) the cluster partition map. The map is adopted
    /// through the same epoch fence mirrors apply
    /// ([`PartitionMap::adopt`]), and at the coordinator the adopted map
    /// then rides *every* subsequent COMMIT — not just the next one — so
    /// mirrors that join or rejoin mid-stream still converge to the newest
    /// assignment. Returns whether the map was newer than the current one.
    pub fn set_partition_map(&mut self, pm: PartitionMap) -> bool {
        let adopted = PartitionMap::adopt(&mut self.partition, &pm);
        if adopted {
            self.counters.partition_updates += 1;
        }
        adopted
    }

    /// The cluster partition map this unit has adopted (`None` = classic
    /// full replication).
    pub fn partition_map(&self) -> Option<&PartitionMap> {
        self.partition.as_ref()
    }

    /// Epoch of the adopted partition map (`0` when unpartitioned) — the
    /// monotone fencing value tests assert on.
    pub fn partition_epoch(&self) -> u64 {
        self.partition.as_ref().map_or(0, |p| p.epoch())
    }

    /// Enable idle heartbeat rounds (central site): after `ticks`
    /// consecutive idle sending-task wakeups with nothing to commit, a
    /// checkpoint round is started at the committed frontier anyway.
    /// Failure detection at mirrors infers coordinator death from
    /// control-channel silence, so when failover is armed, silence must
    /// mean death — not an idle event stream. `0` (the default) disables
    /// heartbeats, preserving the paper's no-timeout protocol exactly.
    pub fn set_heartbeat_after(&mut self, ticks: u32) {
        self.heartbeat_after = ticks;
    }

    /// Fast-forward the backup queue's next send index to at least `idx`
    /// (see [`BackupQueue::resume_from`]): a coordinator promoted over an
    /// existing durable journal must continue the journal's index
    /// sequence, not restart at 1.
    pub fn resume_send_idx(&mut self, idx: u64) {
        self.backup.resume_from(idx);
    }

    /// Admit a brand-new mirror at `epoch` (central site only): it joins
    /// checkpoint rounds from the next round on — a round already in
    /// flight is never gated on a site that did not see its proposal
    /// (same machinery as [`readmit_mirror`](Self::readmit_mirror)).
    pub fn admit_mirror(&mut self, site: SiteId, epoch: u64) {
        self.set_membership_epoch(epoch);
        self.readmit_mirror(site);
    }

    /// Gracefully retire a mirror at `epoch` (central site only): remove
    /// it from checkpoint rounds without marking it failed, and drop its
    /// monitor report so a retired site's last pressure reading cannot
    /// keep driving adaptation.
    pub fn retire_mirror(&mut self, site: SiteId, epoch: u64) {
        self.set_membership_epoch(epoch);
        if let Role::Central { checkpointer, adapt } = &mut self.role {
            checkpointer.retire(site);
            adapt.remove_report(site);
        }
    }

    /// Install an elastic-capacity policy (central site only): each
    /// checkpoint round the controller may then emit an
    /// [`AuxAction::ScaleDirective`].
    pub fn set_scale_policy(&mut self, policy: ScalePolicy) {
        if let Role::Central { adapt, .. } = &mut self.role {
            adapt.set_scale_policy(policy);
        }
    }

    /// Declare a mirror failed immediately (central site only) — the
    /// escalation path for a transport link whose reconnect budget is
    /// exhausted. Unlike `suspect_after` detection, which waits out rounds
    /// of silence, this acts on positive knowledge that the link is dead.
    /// Returns the same [`AuxAction::MirrorFailed`] the detector would.
    pub fn declare_mirror_failed(&mut self, site: SiteId) -> Vec<AuxAction> {
        if let Role::Central { checkpointer, .. } = &mut self.role {
            if checkpointer.declare_failed(site) {
                return vec![AuxAction::MirrorFailed(site)];
            }
        }
        Vec::new()
    }

    /// Replay retained backup-queue events from send index `idx` on
    /// (oldest first): the recovery stream for a peer that reconnected
    /// after losing in-flight traffic. Events already pruned by a
    /// committed checkpoint are omitted — the peer's committed state
    /// covers them.
    pub fn retransmit_from(&self, idx: u64) -> Vec<(u64, Arc<Event>)> {
        self.backup.retransmit_from(idx)
    }

    /// The send index the next mirrored event will receive (see
    /// [`BackupQueue::next_send_idx`]).
    pub fn next_send_idx(&self) -> u64 {
        self.backup.next_send_idx()
    }

    /// Everything below this send index is covered by a committed
    /// checkpoint (see [`BackupQueue::truncation_floor`]) — the durable
    /// truncation watermark a write-ahead journal may advance to.
    pub fn truncation_floor(&self) -> u64 {
        self.backup.truncation_floor()
    }

    /// Set the failure-detection threshold in missed checkpoint rounds
    /// (central site only; 0 disables detection).
    pub fn set_suspect_after(&mut self, rounds: u32) {
        if let Role::Central { checkpointer, .. } = &mut self.role {
            checkpointer.set_suspect_after(rounds);
        }
    }

    /// Mirrors currently participating in checkpoint rounds (central only).
    pub fn live_mirrors(&self) -> Option<Vec<SiteId>> {
        match &self.role {
            Role::Central { checkpointer, .. } => Some(checkpointer.mirrors().to_vec()),
            Role::Mirror { .. } => None,
        }
    }

    /// Last committed checkpoint (central site only).
    pub fn committed(&self) -> Option<VectorTimestamp> {
        match &self.role {
            Role::Central { checkpointer, .. } => Some(checkpointer.committed().clone()),
            Role::Mirror { .. } => None,
        }
    }

    /// Feed one input through the unit, producing the actions to perform.
    pub fn handle(&mut self, input: AuxInput) -> Vec<AuxAction> {
        match input {
            AuxInput::Data(event) => match self.is_central() {
                true => self.central_on_data(event),
                false => self.mirror_on_data(event),
            },
            AuxInput::Control(msg) => self.on_control(msg),
            AuxInput::Flush => self.drain_ready(true),
        }
    }

    // ------------------------------------------------------------------
    // Receiving task (central): stamp, record, filter.
    // ------------------------------------------------------------------

    fn central_on_data(&mut self, event: Arc<Event>) -> Vec<AuxAction> {
        self.counters.received += 1;

        // Reclaim the event: at ingress the Arc is almost always unique
        // (freshly submitted), so this is a move, not a copy.
        let mut event = Arc::try_unwrap(event).unwrap_or_else(|a| (*a).clone());

        // Timestamping: advance the clock with this event's (stream, seq)
        // and stamp the event with the resulting frontier.
        self.clock.advance(event.stream as usize, event.seq);
        event.stamp = self.clock.clone();

        // Status-table history first, then rule evaluation (§3.2.1).
        self.status.observe(&event);
        let outcome = self.rules.evaluate(event, &mut self.status);

        let mut actions = Vec::new();
        if let Some(fwd) = outcome.forward {
            for f in self.fwd_fn.prepare(vec![fwd], &self.params) {
                self.counters.forwarded += 1;
                actions.push(AuxAction::ForwardToMain(Arc::new(f)));
            }
        }
        if let Some(mir) = outcome.mirror {
            self.ready.push(mir);
        } else {
            self.counters.suppressed += 1;
        }
        for derived in outcome.derived {
            // Derived events are new application-level facts: they go to
            // the main unit and onto the mirror path.
            self.counters.forwarded += 1;
            actions.push(AuxAction::ForwardToMain(Arc::new(derived.clone())));
            self.ready.push(derived);
        }

        // Sending task: drain whatever is pending. Per-flight coalescing
        // state is held inside the mirroring function, so draining eagerly
        // still produces coalesced wire events.
        actions.extend(self.drain_ready(false));

        // Control task: checkpoint once per `checkpoint_every` processed
        // events.
        self.processed_since_chkpt += 1;
        if self.processed_since_chkpt >= self.params.checkpoint_every {
            self.processed_since_chkpt = 0;
            actions.extend(self.begin_checkpoint());
        }
        actions
    }

    // ------------------------------------------------------------------
    // Sending task (central): mirror, retain, trigger checkpoints.
    // ------------------------------------------------------------------

    fn drain_ready(&mut self, flush: bool) -> Vec<AuxAction> {
        if !self.is_central() {
            // Mirror-side data drains in mirror_on_data; a Flush on a
            // mirror site is a no-op.
            return Vec::new();
        }
        let batch = self.ready.drain_up_to(usize::MAX);
        let mut wire = self.mirror_fn.prepare(batch, &self.params);
        if flush {
            wire.extend(self.mirror_fn.flush(&self.params));
        }

        let mut actions = Vec::with_capacity(wire.len() + 2);
        for ev in wire {
            self.counters.mirrored += 1;
            self.counters.mirrored_bytes += ev.wire_size() as u64;
            // One allocation shared between the backup queue and every
            // outgoing mirror channel.
            let ev = Arc::new(ev);
            let idx = self.backup.push(Arc::clone(&ev));
            actions.push(AuxAction::Mirror { idx, event: ev });
        }
        actions
    }

    /// Idle-time liveness for the central unit, called by embeddings on
    /// sending-task wakeups. Two duties:
    ///
    /// * **tail commit** — no round in flight but uncommitted events
    ///   remain: start a round so the tail of a stream commits even when
    ///   no new events arrive to trigger rate-based checkpointing;
    /// * **wedged-round restart** — the in-flight round is
    ///   [wedged](CentralCheckpointer::pending_wedged): every participant
    ///   still in the membership has replied, yet the round cannot commit
    ///   because an eviction removed the straggler *after* its peers'
    ///   replies were consumed. No future reply will arrive, so abandon
    ///   it by starting a fresh round under current membership. A round
    ///   that is merely waiting on a slow or partitioned member is left
    ///   alone — restarting those would inflate the round counter during
    ///   an outage and make the survivor's reply lag look like failure;
    /// * **heartbeat rounds** — with
    ///   [`set_heartbeat_after`](Self::set_heartbeat_after) armed, an
    ///   idle coordinator (no round in flight, nothing to commit) starts
    ///   a round at the committed frontier every N wakeups so mirrors
    ///   watching control-channel cadence can distinguish idle from dead.
    pub fn idle_checkpoint(&mut self) -> Vec<AuxAction> {
        let Role::Central { checkpointer, .. } = &self.role else {
            return Vec::new();
        };
        if checkpointer.round_in_flight() {
            if !checkpointer.pending_wedged() {
                // Replies are still due: the control channel is live, so
                // the heartbeat clock restarts.
                self.heartbeat_idle_ticks = 0;
                return Vec::new();
            }
        } else if self.backup.is_empty() {
            if self.heartbeat_after == 0 {
                return Vec::new();
            }
            self.heartbeat_idle_ticks += 1;
            if self.heartbeat_idle_ticks < self.heartbeat_after {
                return Vec::new();
            }
            // Heartbeat: an empty-backup round proposes the committed
            // frontier; every participant's reply trivially covers it, so
            // the round commits and CHKPT/COMMIT cadence keeps flowing.
        }
        self.heartbeat_idle_ticks = 0;
        self.processed_since_chkpt = 0;
        self.begin_checkpoint()
    }

    fn begin_checkpoint(&mut self) -> Vec<AuxAction> {
        let proposal = self.backup.last_stamp().clone();
        let (checkpointer, adapt) = match &mut self.role {
            Role::Central { checkpointer, adapt } => (checkpointer, adapt),
            Role::Mirror { .. } => return Vec::new(),
        };
        // Record the central site's own monitored variables for this round.
        let report = MonitorReport {
            ready_len: self.ready.len() as u64,
            backup_len: self.backup.len() as u64,
            pending_requests: self.pending_requests,
        };
        adapt.record_report(CENTRAL_SITE, report);
        self.counters.checkpoints += 1;
        let msgs = checkpointer.begin(proposal);
        let failed = checkpointer.take_newly_failed();
        for &site in &failed {
            // A dead site's last (possibly alarming) monitor report must
            // not keep driving adaptation decisions.
            adapt.remove_report(site);
        }
        let mut actions = self.route_checkpoint_msgs(msgs);
        actions.extend(failed.into_iter().map(AuxAction::MirrorFailed));
        actions
    }

    // ------------------------------------------------------------------
    // Control task.
    // ------------------------------------------------------------------

    fn on_control(&mut self, msg: ControlMsg) -> Vec<AuxAction> {
        match (&mut self.role, msg) {
            // --- central site -------------------------------------------------
            (
                Role::Central { checkpointer, adapt },
                ControlMsg::ChkptRep { round, site, stamp, monitor, term },
            ) => {
                // The local main unit only knows the pending-request count;
                // its reply must not clobber the central's real queue
                // lengths in the adaptation monitors.
                let monitor = if site == CENTRAL_SITE {
                    MonitorReport {
                        ready_len: self.ready.len() as u64,
                        backup_len: self.backup.len() as u64,
                        pending_requests: monitor.pending_requests.max(self.pending_requests),
                    }
                } else {
                    monitor
                };
                adapt.record_report(site, monitor);
                let reply = checkpointer.on_reply(round, site, stamp, term);
                let failed = checkpointer.take_newly_failed();
                for &f in &failed {
                    adapt.remove_report(f);
                }
                let mut failure_actions: Vec<AuxAction> =
                    failed.into_iter().map(AuxAction::MirrorFailed).collect();
                match reply {
                    None => failure_actions,
                    Some((commit, msgs)) => {
                        // Voting complete: decide adaptation, attach the
                        // directive to the commit, prune our own backup.
                        let directive = match adapt.decide() {
                            AdaptDecision::Hold => None,
                            AdaptDecision::Engage(d) | AdaptDecision::Release(d) => Some(d),
                        };
                        // In partitioned mode the current map rides every
                        // COMMIT. On a Hold round a carrier directive is
                        // synthesized at the *current* params generation:
                        // the receiver's generation guard skips the params,
                        // and the partition map applies through its own
                        // epoch fence.
                        let directive = match (directive, &self.partition) {
                            (Some(mut d), pm) => {
                                d.partition = pm.clone();
                                Some(d)
                            }
                            (None, Some(pm)) => Some(AdaptDirective {
                                params: self.params.clone(),
                                mirror_fn: None,
                                partition: Some(pm.clone()),
                            }),
                            (None, None) => None,
                        };
                        // Elastic capacity is decided at the same point —
                        // once per committed round, centrally — but is an
                        // embedding-level action (the aux unit does not own
                        // site lifecycles), so it surfaces as its own
                        // action rather than riding the COMMIT.
                        let scale = adapt.decide_scale(checkpointer.mirrors().len());
                        self.backup.prune(&commit);
                        let mut actions = Vec::new();
                        for m in msgs {
                            let routed = attach_directive(m, &directive);
                            actions.push(route_one(routed));
                        }
                        if let Some(d) = directive {
                            actions.extend(self.apply_directive(d));
                        }
                        self.counters.control_msgs += actions.len() as u64;
                        failure_actions.extend(actions);
                        if let Some(s) = scale {
                            failure_actions.push(AuxAction::ScaleDirective(s));
                        }
                        failure_actions
                    }
                }
            }
            // The central site never receives CHKPT/COMMIT from others.
            (Role::Central { .. }, _other) => Vec::new(),

            // --- mirror site --------------------------------------------------
            (Role::Mirror { relay }, msg @ ControlMsg::Chkpt { .. }) => {
                // Term fence: a CHKPT from an older term is a resurrected
                // coordinator that has already been succeeded — relaying it
                // to the main unit would let it split-brain the round.
                if msg.term() < self.leader_term {
                    self.counters.stale_term_rejects += 1;
                    return Vec::new();
                }
                self.leader_term = msg.term();
                if let Some(e) = msg.epoch() {
                    self.membership_epoch = self.membership_epoch.max(e);
                }
                let msgs = relay.on_chkpt(msg);
                self.counters.control_msgs += msgs.len() as u64;
                self.route_checkpoint_msgs(msgs)
            }
            (
                Role::Mirror { relay },
                ControlMsg::ChkptRep { round, site, stamp, monitor, term },
            ) => {
                // Reply from our local main unit: refresh the monitored
                // variables with this unit's own queue lengths (the main
                // unit only knows the pending-request count) and relay.
                // The reply echoes its proposal's term, which passed the
                // fence on arrival — no re-check needed here.
                let monitor = MonitorReport {
                    ready_len: self.ready.len() as u64,
                    backup_len: self.backup.len() as u64,
                    pending_requests: monitor.pending_requests.max(self.pending_requests),
                };
                let msgs = relay.on_main_reply(round, site, stamp, monitor, term, &self.backup);
                self.counters.control_msgs += msgs.len() as u64;
                self.route_checkpoint_msgs(msgs)
            }
            (Role::Mirror { relay }, msg @ ControlMsg::Commit { .. }) => {
                // Same fence as CHKPT: a stale-term COMMIT must not prune
                // the backup queue or reconfigure this site.
                if msg.term() < self.leader_term {
                    self.counters.stale_term_rejects += 1;
                    return Vec::new();
                }
                self.leader_term = msg.term();
                if let Some(e) = msg.epoch() {
                    self.membership_epoch = self.membership_epoch.max(e);
                }
                let directive = match &msg {
                    ControlMsg::Commit { adapt, .. } => adapt.clone(),
                    _ => None,
                };
                let (pruned, msgs) = relay.on_commit(msg, &mut self.backup);
                if pruned > 0 {
                    self.counters.checkpoints += 1;
                }
                let mut actions = self.route_checkpoint_msgs(msgs);
                if let Some(d) = directive {
                    actions.extend(self.apply_directive(d));
                }
                actions
            }
        }
    }

    /// Apply a (generation-guarded) adaptation directive to this unit.
    fn apply_directive(&mut self, d: AdaptDirective) -> Vec<AuxAction> {
        // The partition map fences on its own epoch, *before* and
        // independently of the params generation guard: a directive whose
        // params are stale can still carry a newer slot assignment (the
        // coordinator re-sends the current map on every COMMIT).
        if let Some(pm) = &d.partition {
            if PartitionMap::adopt(&mut self.partition, pm) {
                self.counters.partition_updates += 1;
            }
        }
        if d.params.generation <= self.params.generation {
            return Vec::new(); // stale directive
        }
        let mut actions = Vec::new();
        if let Some(kind) = d.mirror_fn {
            // Release anything the outgoing function buffered (partial
            // coalescing runs) before swapping it out — a reconfiguration
            // must never silently drop events from the mirror path.
            for ev in self.mirror_fn.flush(&self.params) {
                self.counters.mirrored += 1;
                self.counters.mirrored_bytes += ev.wire_size() as u64;
                let ev = Arc::new(ev);
                let idx = self.backup.push(Arc::clone(&ev));
                actions.push(AuxAction::Mirror { idx, event: ev });
            }
            self.mirror_fn = kind.build();
            self.rules = kind.rules();
        }
        self.params = d.params.clone();
        self.counters.adaptations += 1;
        actions.push(AuxAction::Reconfigured(d.params));
        actions
    }

    fn route_checkpoint_msgs(&mut self, msgs: Vec<CheckpointMsg>) -> Vec<AuxAction> {
        msgs.into_iter().map(route_one).collect()
    }

    // ------------------------------------------------------------------
    // Mirror-site data path.
    // ------------------------------------------------------------------

    fn mirror_on_data(&mut self, event: Arc<Event>) -> Vec<AuxAction> {
        self.counters.received += 1;
        self.clock.merge(&event.stamp);
        self.status.observe(&event);
        // Mirror sites retain a copy for checkpoint-bounded recovery and
        // hand the event to their main unit (whose EDE replicates state and
        // serves client requests). Both copies share one allocation.
        self.backup.push(Arc::clone(&event));
        self.counters.forwarded += 1;
        vec![AuxAction::ForwardToMain(event)]
    }
}

/// Attach an adaptation directive to a routed commit message.
fn attach_directive(msg: CheckpointMsg, directive: &Option<AdaptDirective>) -> CheckpointMsg {
    let Some(d) = directive else { return msg };
    let patch = |m: ControlMsg| match m {
        ControlMsg::Commit { round, stamp, epoch, term, .. } => {
            ControlMsg::Commit { round, stamp, epoch, term, adapt: Some(d.clone()) }
        }
        other => other,
    };
    match msg {
        CheckpointMsg::BroadcastToMirrors(m) => CheckpointMsg::BroadcastToMirrors(patch(m)),
        CheckpointMsg::ToLocalMain(m) => CheckpointMsg::ToLocalMain(patch(m)),
        CheckpointMsg::ToCentral(m) => CheckpointMsg::ToCentral(patch(m)),
    }
}

/// Translate a checkpoint routing instruction into an aux action.
fn route_one(msg: CheckpointMsg) -> AuxAction {
    match msg {
        CheckpointMsg::BroadcastToMirrors(m) => AuxAction::ControlToMirrors(m),
        CheckpointMsg::ToLocalMain(m) => AuxAction::ControlToMain(m),
        CheckpointMsg::ToCentral(m) => AuxAction::ControlToCentral(m),
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::event::{Event, EventType, PositionFix};
    use crate::rules::Rule;

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 30000.0, speed_kts: 450.0, heading_deg: 0.0 }
    }

    fn pos(seq: u64, flight: u32) -> Event {
        Event::faa_position(seq, flight, fix())
    }

    /// Drive a full checkpoint round by hand: run the main-unit responders
    /// and feed their replies back, return total mirror-side prunes.
    fn run_round(
        central: &mut AuxUnit,
        mirrors: &mut [AuxUnit],
        actions: Vec<AuxAction>,
        mains: &mut [crate::checkpoint::MainUnitResponder],
    ) -> Vec<AuxAction> {
        use crate::adapt::MonitorReport;
        let mut commits = Vec::new();
        // Deliver CHKPT broadcast + local main.
        for a in actions {
            match a {
                AuxAction::ControlToMirrors(m) => {
                    for (i, mu) in mirrors.iter_mut().enumerate() {
                        let acts = mu.handle(AuxInput::Control(m.clone()));
                        for act in acts {
                            if let AuxAction::ControlToMain(cm) = act {
                                // mirror main unit replies
                                if let Some(rep) =
                                    mains[i + 1].on_chkpt(&cm, MonitorReport::default())
                                {
                                    let back = mu.handle(AuxInput::Control(rep));
                                    for b in back {
                                        if let AuxAction::ControlToCentral(r) = b {
                                            commits.extend(central.handle(AuxInput::Control(r)));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                AuxAction::ControlToMain(m) => {
                    if let Some(rep) = mains[0].on_chkpt(&m, MonitorReport::default()) {
                        commits.extend(central.handle(AuxInput::Control(rep)));
                    }
                }
                _ => {}
            }
        }
        commits
    }

    #[test]
    fn central_stamps_and_mirrors_every_event_by_default() {
        let mut aux = AuxUnit::central(vec![1], MirrorParams::default());
        let actions = aux.handle(AuxInput::Data(pos(1, 7).into()));
        let mirrors: Vec<_> =
            actions.iter().filter(|a| matches!(a, AuxAction::Mirror { .. })).collect();
        let fwds: Vec<_> =
            actions.iter().filter(|a| matches!(a, AuxAction::ForwardToMain(_))).collect();
        assert_eq!(mirrors.len(), 1);
        assert_eq!(fwds.len(), 1);
        if let AuxAction::Mirror { idx, event } = mirrors[0] {
            assert_eq!(event.stamp.get(0), 1, "event must be stamped at ingress");
            assert_eq!(*idx, 1, "first send carries index 1");
        }
        assert_eq!(aux.backup_len(), 1, "mirrored event retained in backup queue");
    }

    #[test]
    fn selective_rules_suppress_mirror_but_not_forward() {
        let mut aux = AuxUnit::central(vec![1], MirrorParams::default());
        aux.rules_mut().push(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 5 });
        let mut mirrored = 0;
        let mut forwarded = 0;
        for seq in 1..=50 {
            for a in aux.handle(AuxInput::Data(pos(seq, 3).into())) {
                match a {
                    AuxAction::Mirror { .. } => mirrored += 1,
                    AuxAction::ForwardToMain(_) => forwarded += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(forwarded, 50, "forward path lossless");
        assert!((10..=11).contains(&mirrored), "1-in-5 mirrored, got {mirrored}");
        assert_eq!(aux.counters().suppressed as usize, 50 - mirrored);
    }

    #[test]
    fn coalescing_accumulates_per_flight_until_cap_or_flush() {
        let mut params = MirrorParams::default();
        params.coalesce = true;
        params.coalesce_max = 4;
        let mut aux = AuxUnit::central(vec![1], params);
        aux.set_mirror_fn(Box::new(crate::mirrorfn::CoalescingMirror::new()));
        let mut mirrored = Vec::new();
        for seq in 1..=3 {
            for a in aux.handle(AuxInput::Data(pos(seq, 1).into())) {
                if let AuxAction::Mirror { event, .. } = a {
                    mirrored.push(event);
                }
            }
        }
        assert!(mirrored.is_empty(), "run of 3 < cap 4: still accumulating");
        for a in aux.handle(AuxInput::Data(pos(4, 1).into())) {
            if let AuxAction::Mirror { event, .. } = a {
                mirrored.push(event);
            }
        }
        assert_eq!(mirrored.len(), 1, "cap reached: one coalesced wire event");
        // A partial run is released by Flush.
        aux.handle(AuxInput::Data(pos(5, 1).into()));
        let flushed = aux.handle(AuxInput::Flush);
        assert!(flushed.iter().any(|a| matches!(a, AuxAction::Mirror { .. })));
    }

    #[test]
    fn checkpoint_fires_every_n_sent_events_and_prunes() {
        let mut params = MirrorParams::default();
        params.checkpoint_every = 10;
        let mut central = AuxUnit::central(vec![1], params.clone());
        let mut mirror = AuxUnit::mirror(1, params);
        let mut mains = vec![
            crate::checkpoint::MainUnitResponder::new(CENTRAL_SITE),
            crate::checkpoint::MainUnitResponder::new(1),
        ];

        let mut chkpt_actions = Vec::new();
        for seq in 1..=10 {
            for a in central.handle(AuxInput::Data(pos(seq, 1).into())) {
                match a {
                    AuxAction::Mirror { event, .. } => {
                        // Deliver to the mirror; its main unit processes.
                        for ma in mirror.handle(AuxInput::Data(event)) {
                            if let AuxAction::ForwardToMain(ev) = ma {
                                mains[1].record_processed(&ev.stamp);
                            }
                        }
                    }
                    AuxAction::ForwardToMain(ev) => mains[0].record_processed(&ev.stamp),
                    other => chkpt_actions.push(other),
                }
            }
        }
        assert!(
            chkpt_actions
                .iter()
                .any(|a| matches!(a, AuxAction::ControlToMirrors(ControlMsg::Chkpt { .. }))),
            "checkpoint initiated after 10 sent events"
        );
        assert_eq!(central.backup_len(), 10);
        assert_eq!(mirror.backup_len(), 10);

        let commits = run_round(&mut central, &mut [mirror], chkpt_actions, &mut mains);
        // Commit messages were broadcast.
        assert!(commits
            .iter()
            .any(|a| matches!(a, AuxAction::ControlToMirrors(ControlMsg::Commit { .. }))));
        // Central pruned everything it had mirrored (all processed).
        assert_eq!(central.backup_len(), 0);
        assert_eq!(central.committed().unwrap().get(0), 10);
    }

    #[test]
    fn mirror_applies_piggybacked_directive() {
        let mut mirror = AuxUnit::mirror(1, MirrorParams::default());
        let mut new_params = MirrorParams::profile_degraded();
        new_params.generation = 5;
        let commit = ControlMsg::Commit {
            round: 1,
            stamp: VectorTimestamp::empty(),
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective {
                params: new_params.clone(),
                mirror_fn: Some(MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 }),
                partition: None,
            }),
        };
        let actions = mirror.handle(AuxInput::Control(commit));
        assert!(actions.iter().any(|a| matches!(a, AuxAction::Reconfigured(_))));
        assert_eq!(mirror.params().coalesce_max, 20);
        assert_eq!(mirror.counters().adaptations, 1);

        // A stale (older-generation) directive is ignored.
        let mut stale = MirrorParams::default();
        stale.generation = 2;
        let commit = ControlMsg::Commit {
            round: 2,
            stamp: VectorTimestamp::empty(),
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective { params: stale, mirror_fn: None, partition: None }),
        };
        let actions = mirror.handle(AuxInput::Control(commit));
        assert!(actions.iter().all(|a| !matches!(a, AuxAction::Reconfigured(_))));
        assert_eq!(mirror.params().coalesce_max, 20);
    }

    #[test]
    fn partition_map_rides_commits_and_fences_on_epoch() {
        use crate::partition::PartitionMap;

        // A stale-params directive still delivers a newer partition map:
        // the two fences are independent.
        let mut mirror = AuxUnit::mirror(1, MirrorParams::default());
        let pm = PartitionMap::uniform(4);
        let stale_params = MirrorParams::default(); // generation 0 = stale
        let commit = ControlMsg::Commit {
            round: 1,
            stamp: VectorTimestamp::empty(),
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective {
                params: stale_params.clone(),
                mirror_fn: None,
                partition: Some(pm.clone()),
            }),
        };
        mirror.handle(AuxInput::Control(commit.clone()));
        assert_eq!(mirror.partition_epoch(), pm.epoch());
        assert_eq!(mirror.counters().partition_updates, 1);
        assert_eq!(mirror.counters().adaptations, 0, "params were stale");

        // Re-delivering the same map (the coordinator re-sends it every
        // COMMIT) is a fenced no-op.
        mirror.handle(AuxInput::Control(commit));
        assert_eq!(mirror.counters().partition_updates, 1);

        // An older map can never roll back a migration.
        let old = PartitionMap::single();
        let rollback = ControlMsg::Commit {
            round: 2,
            stamp: VectorTimestamp::empty(),
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective {
                params: stale_params,
                mirror_fn: None,
                partition: Some(old),
            }),
        };
        mirror.handle(AuxInput::Control(rollback));
        assert_eq!(mirror.partition_epoch(), pm.epoch());

        // A migrated (epoch-bumped) map is adopted.
        let mut moved = pm.clone();
        moved.assign(0, 3);
        assert!(mirror.set_partition_map(moved.clone()));
        assert_eq!(mirror.partition_map().unwrap(), &moved);
        assert_eq!(mirror.counters().partition_updates, 2);
    }

    #[test]
    fn central_attaches_partition_map_to_every_commit() {
        use crate::partition::PartitionMap;

        // Even on a Hold round (no adaptation decided), a partitioned
        // coordinator synthesizes a carrier directive so the map reaches
        // mirrors on every COMMIT.
        let mut central = AuxUnit::central(vec![1], MirrorParams::default());
        let mut mirror = AuxUnit::mirror(1, MirrorParams::default());
        let mut mains = vec![
            crate::checkpoint::MainUnitResponder::new(0),
            crate::checkpoint::MainUnitResponder::new(1),
        ];
        central.set_partition_map(PartitionMap::uniform(2));

        let mut actions = Vec::new();
        for seq in 1..=50 {
            let mut e = pos(seq, 7);
            e.stamp.advance(0, seq);
            actions.extend(central.handle(AuxInput::Data(Arc::new(e))));
        }
        let commits =
            run_round(&mut central, std::slice::from_mut(&mut mirror), actions, &mut mains);
        let mut carried = false;
        for a in &commits {
            if let AuxAction::ControlToMirrors(m @ ControlMsg::Commit { adapt, .. }) = a {
                carried |= adapt
                    .as_ref()
                    .and_then(|d| d.partition.as_ref())
                    .is_some_and(|p| p.epoch() == 1);
                mirror.handle(AuxInput::Control(m.clone()));
            }
        }
        assert!(carried, "commit must carry the partition map: {commits:?}");
        assert_eq!(mirror.partition_epoch(), 1, "mirror adopted the map from the commit");
    }

    #[test]
    fn mirror_data_path_forwards_and_retains() {
        let mut mirror = AuxUnit::mirror(2, MirrorParams::default());
        let mut e = pos(1, 9);
        e.stamp.advance(0, 1);
        let actions = mirror.handle(AuxInput::Data(e.into()));
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], AuxAction::ForwardToMain(_)));
        assert_eq!(mirror.backup_len(), 1);
        assert_eq!(mirror.clock().get(0), 1);
    }

    #[test]
    fn monitor_report_reflects_queues_and_requests() {
        let mut aux = AuxUnit::central(vec![1], MirrorParams::default());
        for seq in 1..=5 {
            aux.handle(AuxInput::Data(pos(seq, 1).into()));
        }
        aux.set_pending_requests(42);
        let r = aux.monitor_report();
        assert_eq!(r.backup_len, 5, "mirrored events retained until commit");
        assert_eq!(r.pending_requests, 42);
    }

    #[test]
    fn idle_checkpoint_restarts_a_wedged_round() {
        use crate::control::ControlMsg;

        // Central mirrors to sites 1 and 2; a round starts and everyone
        // but mirror 2 replies.
        let mut params = MirrorParams::default();
        params.checkpoint_every = 1;
        let mut aux = AuxUnit::central(vec![1, 2], params);
        aux.handle(AuxInput::Data(pos(1, 7).into()));
        let stamp = aux.clock().clone();
        let reply = |site| ControlMsg::ChkptRep {
            round: 1,
            site,
            stamp: stamp.clone(),
            monitor: crate::adapt::MonitorReport::default(),
            term: 0,
        };
        aux.handle(AuxInput::Control(reply(CENTRAL_SITE)));
        aux.handle(AuxInput::Control(reply(1)));

        // Mirror 2 is merely slow (a long link outage, say): the round is
        // waiting, not wedged. Idle wakeups must leave it alone however
        // many elapse — abandoning it would inflate the round counter and
        // make the survivor's reply lag read as failure.
        for _ in 0..5 {
            assert!(aux.idle_checkpoint().is_empty(), "a waiting round must not be restarted");
        }

        // Mirror 2's link is now declared dead. Its reply will never come
        // and everyone else already answered, so the round is wedged: the
        // next idle wakeup abandons it and starts a fresh one (new CHKPT
        // broadcast) under the surviving membership, restoring liveness.
        aux.declare_mirror_failed(2);
        let actions = aux.idle_checkpoint();
        assert!(
            actions.iter().any(|a| matches!(a, AuxAction::ControlToMirrors(_))),
            "wedged round must be superseded, got {actions:?}"
        );
    }

    #[test]
    fn mirror_learns_membership_epoch_from_control_traffic() {
        let mut mirror = AuxUnit::mirror(1, MirrorParams::default());
        assert_eq!(mirror.membership_epoch(), 0);
        mirror.handle(AuxInput::Control(ControlMsg::Chkpt {
            round: 1,
            stamp: VectorTimestamp::empty(),
            epoch: 3,
            term: 0,
        }));
        assert_eq!(mirror.membership_epoch(), 3);
        mirror.handle(AuxInput::Control(ControlMsg::Commit {
            round: 1,
            stamp: VectorTimestamp::empty(),
            epoch: 5,
            term: 0,
            adapt: None,
        }));
        assert_eq!(mirror.membership_epoch(), 5);
        // A delayed message from an older epoch never regresses it.
        mirror.handle(AuxInput::Control(ControlMsg::Chkpt {
            round: 2,
            stamp: VectorTimestamp::empty(),
            epoch: 4,
            term: 0,
        }));
        assert_eq!(mirror.membership_epoch(), 5);
    }

    #[test]
    fn sustained_pending_pressure_emits_scale_directive() {
        use crate::adapt::{MonitorThresholds, ScaleDecision, ScalePolicy};

        let mut params = MirrorParams::default();
        params.checkpoint_every = 1;
        let mut aux = AuxUnit::central(vec![1], params);
        aux.set_scale_policy(ScalePolicy {
            thresholds: MonitorThresholds::new(10, 6),
            sustain: 2,
            cooldown: 0,
            max_mirrors: 2,
            min_mirrors: 1,
        });
        let mut scale_directives = Vec::new();
        for round in 1..=3u64 {
            // Each data event (checkpoint_every=1) starts a round.
            aux.handle(AuxInput::Data(pos(round, 1).into()));
            let stamp = aux.clock().clone();
            let hot = MonitorReport { pending_requests: 50, ..Default::default() };
            for site in [CENTRAL_SITE, 1] {
                let acts = aux.handle(AuxInput::Control(ControlMsg::ChkptRep {
                    round,
                    site,
                    stamp: stamp.clone(),
                    monitor: hot,
                    term: 0,
                }));
                for a in acts {
                    if let AuxAction::ScaleDirective(s) = a {
                        scale_directives.push(s);
                    }
                }
            }
        }
        assert_eq!(
            scale_directives,
            vec![ScaleDecision::SpawnMirror],
            "two sustained hot rounds spawn exactly one mirror (then at max)"
        );
    }

    #[test]
    fn mirror_fences_stale_term_frames() {
        let mut mirror = AuxUnit::mirror(1, MirrorParams::default());
        // Learn term 2 from a live coordinator.
        let acts = mirror.handle(AuxInput::Control(ControlMsg::Chkpt {
            round: 1,
            stamp: VectorTimestamp::empty(),
            epoch: 0,
            term: 2,
        }));
        assert!(!acts.is_empty(), "current-term CHKPT relays to the main unit");
        assert_eq!(mirror.leader_term(), 2);

        // Retain an event, then let a resurrected term-1 coordinator try
        // to prune it with a COMMIT: the frame must be rejected outright.
        let mut e = pos(1, 4);
        e.stamp.advance(0, 1);
        mirror.handle(AuxInput::Data(e.into()));
        assert_eq!(mirror.backup_len(), 1);
        let stale_commit = ControlMsg::Commit {
            round: 9,
            stamp: VectorTimestamp::from_components(vec![1]),
            epoch: 0,
            term: 1,
            adapt: None,
        };
        let acts = mirror.handle(AuxInput::Control(stale_commit));
        assert!(acts.is_empty(), "stale-term COMMIT must produce no actions");
        assert_eq!(mirror.backup_len(), 1, "stale-term COMMIT must not prune");
        let stale_chkpt =
            ControlMsg::Chkpt { round: 9, stamp: VectorTimestamp::empty(), epoch: 0, term: 1 };
        assert!(mirror.handle(AuxInput::Control(stale_chkpt)).is_empty());
        assert_eq!(mirror.counters().stale_term_rejects, 2);
        assert_eq!(mirror.leader_term(), 2, "fencing never regresses the term");
    }

    #[test]
    fn promoted_central_stamps_bumped_term_on_rounds() {
        let mut params = MirrorParams::default();
        params.checkpoint_every = 1;
        let mut aux = AuxUnit::central(vec![1], params);
        aux.set_leader_term(4);
        assert_eq!(aux.leader_term(), 4);
        let actions = aux.handle(AuxInput::Data(pos(1, 7).into()));
        let chkpt = actions
            .iter()
            .find_map(|a| match a {
                AuxAction::ControlToMirrors(m @ ControlMsg::Chkpt { .. }) => Some(m),
                _ => None,
            })
            .expect("round started");
        assert_eq!(chkpt.term(), 4);
        // Monotone: a stale set_leader_term cannot step back.
        aux.set_leader_term(2);
        assert_eq!(aux.leader_term(), 4);
    }

    #[test]
    fn idle_heartbeat_keeps_control_cadence_flowing() {
        let mut aux = AuxUnit::central(vec![1], MirrorParams::default());
        // Disabled by default: an idle coordinator stays silent forever.
        for _ in 0..100 {
            assert!(aux.idle_checkpoint().is_empty());
        }
        aux.set_heartbeat_after(3);
        // Two idle ticks: still quiet; the third starts a heartbeat round.
        assert!(aux.idle_checkpoint().is_empty());
        assert!(aux.idle_checkpoint().is_empty());
        let actions = aux.idle_checkpoint();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, AuxAction::ControlToMirrors(ControlMsg::Chkpt { .. }))),
            "heartbeat round must broadcast a CHKPT, got {actions:?}"
        );
        // The heartbeat round commits on empty replies, so cadence repeats.
        let stamp = aux.clock().clone();
        for site in [1, CENTRAL_SITE] {
            aux.handle(AuxInput::Control(ControlMsg::ChkptRep {
                round: 1,
                site,
                stamp: stamp.clone(),
                monitor: crate::adapt::MonitorReport::default(),
                term: 0,
            }));
        }
        assert!(aux.idle_checkpoint().is_empty());
        assert!(aux.idle_checkpoint().is_empty());
        assert!(!aux.idle_checkpoint().is_empty(), "heartbeats repeat every N idle ticks");
    }

    #[test]
    fn install_kind_swaps_whole_configuration() {
        let mut aux = AuxUnit::central(vec![1], MirrorParams::default());
        aux.install_kind(MirrorFnKind::Selective { overwrite: 10 });
        assert_eq!(aux.rules().rules().len(), 1);
        assert_eq!(aux.params().overwrite_max, 10);
        aux.install_kind(MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 });
        assert!(aux.params().coalesce);
        assert_eq!(aux.params().checkpoint_every, 100);
        assert!(aux.rules().is_empty());
    }
}
