//! Bounded lock-free rings for the hot apply path.
//!
//! The mutex-guarded [`queue`](crate::queue) structures are the *logical*
//! ready/backup queues of the paper's auxiliary unit; when the runtime
//! moves millions of events per second between threads, the per-event cost
//! of a mutex acquisition (and of an unbounded channel's allocation) is
//! what caps throughput. This module provides the two transfer shapes the
//! sharded apply path needs, both **bounded** (backpressure instead of
//! unbounded memory) and **lock-free** on the fast path:
//!
//! * [`spsc`] — a Lamport single-producer/single-consumer ring: one atomic
//!   load + one atomic store per side per operation. Used to feed each
//!   apply worker from the dispatcher (shard affinity makes every
//!   dispatcher→worker edge single-producer/single-consumer by
//!   construction).
//! * [`mpsc`] — a Vyukov-style bounded multi-producer/single-consumer
//!   ring (per-slot sequence numbers, one CAS per push). Used where
//!   several threads feed one drain loop (e.g. the aux thread, seed
//!   installers and shutdown all feeding a site's apply dispatcher).
//!
//! Both rings keep **exact** occupancy statistics ([`RingStats`]) for
//! free: the ring positions themselves are the operation counts (`tail` =
//! items ever pushed, `head` = items ever popped), so the stats cost no
//! extra atomics on the hot path; only the high-watermark needs a
//! producer-side observation per push.
//!
//! Disconnect semantics mirror a channel's: when every producer handle is
//! dropped the consumer drains what remains and then observes
//! [`RingRecv::Disconnected`]; when the consumer is dropped, pushes fail
//! with [`RingSend::Disconnected`] so producers never spin against a dead
//! drain.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Occupancy statistics for a ring; the lock-free analogue of
/// [`QueueStats`](crate::queue::QueueStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Total items ever enqueued.
    pub enqueued: u64,
    /// Total items ever dequeued.
    pub dequeued: u64,
    /// Largest occupancy observed by the producer side at a push.
    pub high_watermark: usize,
}

/// Why a push did not take the item.
#[derive(Debug, PartialEq, Eq)]
pub enum RingSend<T> {
    /// The ring is at capacity; the item is handed back (backpressure).
    Full(T),
    /// The consumer is gone; the item is handed back.
    Disconnected(T),
}

/// What a pop observed.
#[derive(Debug, PartialEq, Eq)]
pub enum RingRecv<T> {
    /// An item.
    Item(T),
    /// Nothing buffered right now (producers still connected).
    Empty,
    /// Nothing buffered and every producer handle has been dropped.
    Disconnected,
}

/// State shared by both sides of either ring flavour.
struct Shared<T> {
    /// Slot storage; `mask + 1` entries, capacity rounded up to a power of
    /// two so index arithmetic is a mask, not a modulo.
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next slot to write (producer side) / read (consumer side).
    tail: CachePadded<AtomicUsize>,
    head: CachePadded<AtomicUsize>,
    /// Live producer handles; 0 with an empty ring = disconnected.
    producers: AtomicUsize,
    /// Consumer handle dropped.
    consumer_gone: AtomicBool,
    /// Largest occupancy any producer observed at a push. `tail`/`head`
    /// double as the exact enqueue/dequeue counts, so this is the only
    /// dedicated stats cell.
    watermark: AtomicUsize,
}

struct Slot<T> {
    /// Vyukov sequence number: `index` when free for the producer lap,
    /// `index + 1` when filled for the consumer, and so on per lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Pad to a cache line so head and tail never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

// Safety: slots are transferred between threads with acquire/release on
// the per-slot sequence (mpsc) or head/tail (spsc); a slot's value is only
// touched by the side that owns it per those orderings.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Shared {
            slots,
            mask: cap - 1,
            tail: CachePadded(AtomicUsize::new(0)),
            head: CachePadded(AtomicUsize::new(0)),
            producers: AtomicUsize::new(1),
            consumer_gone: AtomicBool::new(false),
            watermark: AtomicUsize::new(0),
        }
    }

    fn stats(&self) -> RingStats {
        // `tail` advances once per completed (or, for MPSC, claimed) push
        // and `head` once per pop, so the positions ARE the op counts.
        RingStats {
            enqueued: self.tail.0.load(Ordering::Acquire) as u64,
            dequeued: self.head.0.load(Ordering::Acquire) as u64,
            high_watermark: self.watermark.load(Ordering::Acquire),
        }
    }

    fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    fn drain_in_place(&mut self) {
        // Exclusive access (last Arc owner): drop any items never popped.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.slots[i & self.mask];
            // A slot between head and tail holds a live value iff its seq
            // marks it filled for this lap.
            if slot.seq.load(Ordering::Relaxed) == i.wrapping_add(1) {
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        self.drain_in_place();
    }
}

// ---------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------

/// Single-producer, single-consumer bounded ring.
///
/// The producer half. Not `Clone` — the single-producer contract is
/// enforced by ownership.
pub struct SpscSender<T> {
    shared: Arc<Shared<T>>,
    /// Producer-local cache of the consumer's head, refreshed only when
    /// the ring looks full — most pushes touch no shared cache line but
    /// the slot and tail.
    cached_head: usize,
    /// Producer-local tail (the authoritative tail is published after each
    /// push; reads of our own position need no atomic round-trip).
    local_tail: usize,
    /// Producer-local high-watermark mirror: the shared cell is only
    /// stored when a push sets a new high, so the common push touches no
    /// stats atomics at all.
    local_watermark: usize,
}

/// The consumer half of an [`spsc`] ring.
pub struct SpscReceiver<T> {
    shared: Arc<Shared<T>>,
    local_head: usize,
    cached_tail: usize,
}

/// Create a bounded SPSC ring. `capacity` is rounded up to a power of two
/// (minimum 2).
pub fn spsc<T: Send>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = Arc::new(Shared::new(capacity));
    (
        SpscSender {
            shared: Arc::clone(&shared),
            cached_head: 0,
            local_tail: 0,
            local_watermark: 0,
        },
        SpscReceiver { shared, local_head: 0, cached_tail: 0 },
    )
}

impl<T: Send> SpscSender<T> {
    /// Push without blocking; on a full ring the item comes back
    /// ([`RingSend::Full`] — bounded-capacity backpressure).
    pub fn try_send(&mut self, value: T) -> Result<(), RingSend<T>> {
        if self.shared.consumer_gone.load(Ordering::Acquire) {
            return Err(RingSend::Disconnected(value));
        }
        let cap = self.shared.mask + 1;
        if self.local_tail.wrapping_sub(self.cached_head) == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.local_tail.wrapping_sub(self.cached_head) == cap {
                return Err(RingSend::Full(value));
            }
        }
        let slot = &self.shared.slots[self.local_tail & self.shared.mask];
        unsafe { (*slot.value.get()).write(value) };
        // Publish the value: seq = tail + 1 marks the slot filled, and the
        // release pairs with the consumer's acquire load of it.
        slot.seq.store(self.local_tail.wrapping_add(1), Ordering::Release);
        self.local_tail = self.local_tail.wrapping_add(1);
        self.shared.tail.0.store(self.local_tail, Ordering::Release);
        // Occupancy as this producer sees it: `cached_head` never runs
        // ahead of the real head, so this is ≥ the true occupancy but —
        // by the full-check above — never exceeds capacity. Single
        // producer ⇒ a plain store publishes a new high.
        let occupancy = self.local_tail.wrapping_sub(self.cached_head);
        if occupancy > self.local_watermark {
            self.local_watermark = occupancy;
            self.shared.watermark.store(occupancy, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Push, spinning (with escalating yields) while the ring is full.
    /// Returns the item only if the consumer disappears.
    pub fn send(&mut self, mut value: T) -> Result<(), T> {
        let mut spins = 0u32;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(RingSend::Disconnected(v)) => return Err(v),
                Err(RingSend::Full(v)) => {
                    value = v;
                    backoff(&mut spins);
                }
            }
        }
    }

    /// Exact statistics so far.
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Current occupancy (exact for the producer's own view).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots in the ring (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Pop without blocking.
    pub fn try_recv(&mut self) -> RingRecv<T> {
        if self.local_head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.local_head == self.cached_tail {
                return if self.shared.producers.load(Ordering::Acquire) == 0 {
                    // Re-check after observing the producer count: a push
                    // completed before the producer dropped must be seen.
                    self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
                    if self.local_head == self.cached_tail {
                        RingRecv::Disconnected
                    } else {
                        self.pop_at()
                    }
                } else {
                    RingRecv::Empty
                };
            }
        }
        self.pop_at()
    }

    fn pop_at(&mut self) -> RingRecv<T> {
        let slot = &self.shared.slots[self.local_head & self.shared.mask];
        // Wait (bounded: the producer already published tail past us) for
        // the slot's fill marker.
        let want = self.local_head.wrapping_add(1);
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != want {
            backoff(&mut spins);
        }
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // Publish the new head BEFORE freeing the slot: a producer that
        // observes the freed slot (acquire on `seq`) then also sees this
        // pop counted, so its occupancy observation never exceeds
        // capacity.
        self.local_head = self.local_head.wrapping_add(1);
        self.shared.head.0.store(self.local_head, Ordering::Release);
        // Free the slot for the producer's next lap.
        slot.seq.store(self.local_head.wrapping_add(self.shared.mask), Ordering::Release);
        RingRecv::Item(value)
    }

    /// Exact statistics so far.
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// MPSC
// ---------------------------------------------------------------------

/// A producer handle for an [`mpsc`] ring; clone freely across threads.
pub struct MpscSender<T> {
    shared: Arc<Shared<T>>,
}

/// The consumer half of an [`mpsc`] ring.
pub struct MpscReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded MPSC ring. `capacity` is rounded up to a power of two
/// (minimum 2).
pub fn mpsc<T: Send>(capacity: usize) -> (MpscSender<T>, MpscReceiver<T>) {
    let shared = Arc::new(Shared::new(capacity));
    (MpscSender { shared: Arc::clone(&shared) }, MpscReceiver { shared })
}

impl<T: Send> MpscSender<T> {
    /// Push without blocking; on a full ring the item comes back.
    pub fn try_send(&self, value: T) -> Result<(), RingSend<T>> {
        if self.shared.consumer_gone.load(Ordering::Acquire) {
            return Err(RingSend::Disconnected(value));
        }
        let mask = self.shared.mask;
        let mut tail = self.shared.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.shared.slots[tail & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot free for this lap: claim it by advancing tail.
                match self.shared.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        // Occupancy at this push: the claim acquired the
                        // slot's free marker, which the consumer publishes
                        // *after* its head advance — so the head read here
                        // is recent enough that this never exceeds
                        // capacity. The RMW runs only on a new high.
                        let occupancy = tail
                            .wrapping_add(1)
                            .wrapping_sub(self.shared.head.0.load(Ordering::Relaxed));
                        if occupancy > self.shared.watermark.load(Ordering::Relaxed) {
                            self.shared.watermark.fetch_max(occupancy, Ordering::AcqRel);
                        }
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if (seq as isize).wrapping_sub(tail as isize) < 0 {
                // A full lap behind: ring is full.
                return Err(RingSend::Full(value));
            } else {
                // Another producer claimed this slot; follow the tail.
                tail = self.shared.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Push, spinning while full; hands the item back only if the consumer
    /// disappears.
    pub fn send(&self, mut value: T) -> Result<(), T> {
        let mut spins = 0u32;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(RingSend::Disconnected(v)) => return Err(v),
                Err(RingSend::Full(v)) => {
                    value = v;
                    backoff(&mut spins);
                }
            }
        }
    }

    /// Exact statistics so far.
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Current occupancy (a point-in-time estimate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots in the ring (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> Clone for MpscSender<T> {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        MpscSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for MpscSender<T> {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T: Send> MpscReceiver<T> {
    /// Pop without blocking.
    pub fn try_recv(&mut self) -> RingRecv<T> {
        let mask = self.shared.mask;
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let slot = &self.shared.slots[head & mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == head.wrapping_add(1) {
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            // Advance head BEFORE freeing the slot (see the SPSC pop):
            // producers acquiring the free marker then observe a head
            // that already counts this pop.
            self.shared.head.0.store(head.wrapping_add(1), Ordering::Release);
            slot.seq.store(head.wrapping_add(mask + 1), Ordering::Release);
            return RingRecv::Item(value);
        }
        if self.shared.producers.load(Ordering::Acquire) == 0 {
            // Producers are gone; if a racing push landed before the last
            // drop, its slot marker is already visible — re-check once.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head.wrapping_add(1) {
                return self.try_recv();
            }
            return RingRecv::Disconnected;
        }
        RingRecv::Empty
    }

    /// Exact statistics so far.
    pub fn stats(&self) -> RingStats {
        self.shared.stats()
    }

    /// Current occupancy (a point-in-time estimate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpscReceiver<T> {
    fn drop(&mut self) {
        self.shared.consumer_gone.store(true, Ordering::Release);
    }
}

/// Escalating wait: spin briefly, then yield the CPU, then sleep — tuned
/// for rings whose peers run on the same machine and drain in microseconds,
/// degrading gracefully when the host is oversubscribed (e.g. a single-core
/// CI runner where the peer cannot run until we yield).
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else if *spins < 1024 {
        // A blocked ring peer means the other side is runnable: on an
        // oversubscribed host (single-core CI) a yield hands it the CPU
        // directly, where an early sleep strands both sides in µs-scale
        // naps that serialize into dead time. Yield long before sleeping.
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spsc_fifo_and_stats() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.try_recv(), RingRecv::Item(i));
        }
        assert_eq!(rx.try_recv(), RingRecv::Empty);
        let st = rx.stats();
        assert_eq!((st.enqueued, st.dequeued, st.high_watermark), (5, 5, 5));
    }

    #[test]
    fn spsc_full_hands_the_item_back() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(RingSend::Full(v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), RingRecv::Item(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn spsc_disconnect_both_ways() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), RingRecv::Item(7), "drain before disconnect");
        assert_eq!(rx.try_recv(), RingRecv::Disconnected);

        let (mut tx, rx) = spsc::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(RingSend::Disconnected(1))));
    }

    #[test]
    fn mpsc_fifo_per_producer_and_stats() {
        let (tx, mut rx) = mpsc::<u64>(16);
        let tx2 = tx.clone();
        for i in 0..4 {
            tx.try_send(i).unwrap();
            tx2.try_send(100 + i).unwrap();
        }
        let mut got = Vec::new();
        while let RingRecv::Item(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 8);
        // Per-producer order is preserved.
        let a: Vec<_> = got.iter().copied().filter(|v| *v < 100).collect();
        let b: Vec<_> = got.iter().copied().filter(|v| *v >= 100).collect();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![100, 101, 102, 103]);
        let st = rx.stats();
        assert_eq!((st.enqueued, st.dequeued), (8, 8));
        assert!(st.high_watermark >= 1 && st.high_watermark <= 16);
    }

    #[test]
    fn mpsc_disconnected_after_all_producers_drop() {
        let (tx, mut rx) = mpsc::<u32>(4);
        let tx2 = tx.clone();
        tx.try_send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), RingRecv::Item(1));
        assert_eq!(rx.try_recv(), RingRecv::Empty, "tx2 still alive");
        drop(tx2);
        assert_eq!(rx.try_recv(), RingRecv::Disconnected);
    }

    #[test]
    fn dropping_a_nonempty_ring_drops_items() {
        // Drop counting: items abandoned in the ring must still be freed.
        #[derive(Debug)]
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let (mut tx, rx) = spsc::<D>(8);
        for _ in 0..5 {
            tx.try_send(D(Arc::clone(&drops))).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = spsc::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = mpsc::<u8>(1);
        assert_eq!(tx.capacity(), 2);
    }
}
