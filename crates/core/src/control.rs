//! Control-channel messages.
//!
//! Each pair of sites is connected by a *data* channel carrying application
//! events and a bi-directional *control* channel carrying the messages
//! defined here (§3.3): checkpoint voting/commit traffic, and — piggybacked
//! onto it to avoid extra adaptation traffic (§3.2.2) — monitored-variable
//! reports (mirror → central) and adaptation directives (central → mirror).
//!
//! The *set* of sites those channels connect is **not** fixed at startup:
//! membership is epoch-stamped (see [`crate::membership`]) and mirrors are
//! admitted and retired while traffic flows. `CHKPT` and `COMMIT` therefore
//! carry the membership epoch in force when
//! the round was formed, so every site — including one that joined
//! mid-stream — knows which membership generation a round and its
//! piggybacked directives belong to.
//!
//! Nor is the *coordinator* fixed for the lifetime of the cluster: central
//! failover promotes a mirror into the coordinator role at a bumped
//! **leadership term**. Every control message carries the term of the
//! coordinator that originated its round: `CHKPT`/`COMMIT` are stamped at
//! the coordinator, and a `CHKPT_REP` echoes the term of the proposal it
//! answers. Receivers fence on the term — a mirror discards frames from a
//! stale term (a resurrected old coordinator), and a coordinator discards
//! replies addressed to a different term — so two coordinators can never
//! split-brain a round even though round numbers restart across
//! promotions.

use serde::{Deserialize, Serialize};

use crate::adapt::MonitorReport;
use crate::mirrorfn::MirrorFnKind;
use crate::params::MirrorParams;
use crate::partition::PartitionMap;
use crate::timestamp::VectorTimestamp;

/// Identifier of a cluster site. Site 0 is by convention the central
/// (primary) site; mirror sites are numbered from 1.
pub type SiteId = u16;

/// The central/primary site's id.
pub const CENTRAL_SITE: SiteId = 0;

/// An adaptation directive shipped from the central site to every mirror,
/// piggybacked on a checkpoint `COMMIT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptDirective {
    /// Complete replacement parameter set (generation-stamped so stale
    /// directives are discarded).
    pub params: MirrorParams,
    /// Optionally install a different named mirroring function.
    pub mirror_fn: Option<MirrorFnKind>,
    /// Cluster partition map, when the cluster runs in partitioned mode.
    /// Carried the same way the params are — piggybacked on `COMMIT` — but
    /// fenced *independently* on its own epoch (like membership epochs),
    /// so a directive whose params are generation-stale can still deliver
    /// a newer partition assignment and vice versa.
    pub partition: Option<PartitionMap>,
}

/// A message on the control channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Voting phase: the central auxiliary unit proposes advancing the
    /// consistent view to `stamp` (usually the most recent value in its
    /// backup queue).
    Chkpt {
        /// Monotone round number (bookkeeping only — the protocol's
        /// correctness rests on timestamps; a later round subsumes an
        /// incomplete earlier one).
        round: u64,
        /// Proposed committable timestamp.
        stamp: VectorTimestamp,
        /// Membership epoch in force at the coordinator when this round
        /// was proposed.
        epoch: u64,
        /// Leadership term of the coordinator proposing the round; stale
        /// terms are fenced out at every receiver.
        term: u64,
    },
    /// A site's reply: the most recent event its business logic has
    /// processed, capped by the proposal (`min{chkpt, last in backup}`).
    ChkptRep {
        /// Round being answered.
        round: u64,
        /// Replying site.
        site: SiteId,
        /// The site's committable timestamp.
        stamp: VectorTimestamp,
        /// Piggybacked monitored-variable report for adaptation.
        monitor: MonitorReport,
        /// Leadership term of the proposal this reply answers (round
        /// numbers restart across promotions, so the term — not the round
        /// — identifies which coordinator the reply addresses).
        term: u64,
    },
    /// Commit phase: every site may discard backup-queue events up to
    /// `stamp` (the minimum over all replies).
    Commit {
        /// Round being committed.
        round: u64,
        /// Committed timestamp.
        stamp: VectorTimestamp,
        /// Membership epoch in force at the coordinator when this commit
        /// was issued.
        epoch: u64,
        /// Leadership term of the coordinator issuing the commit.
        term: u64,
        /// Piggybacked adaptation directive, if the controller decided to
        /// change mirroring behaviour this round.
        adapt: Option<AdaptDirective>,
    },
}

impl ControlMsg {
    /// Approximate bytes this message occupies on a link (header + stamp +
    /// payload); used by the simulator's link cost model.
    pub fn wire_size(&self) -> usize {
        let base = 1 + 8 + 8; // tag + round + term
        match self {
            // Chkpt/Commit carry the 8-byte membership epoch.
            ControlMsg::Chkpt { stamp, .. } => base + 2 + 8 + stamp.wire_size(),
            ControlMsg::ChkptRep { stamp, .. } => base + 2 + 2 + stamp.wire_size() + 3 * 8,
            ControlMsg::Commit { stamp, adapt, .. } => {
                // A full MirrorParams is 4+4+4+1+8 ≈ 21 bytes plus kind;
                // a piggybacked partition map adds its epoch + slot table.
                let directive = match adapt {
                    None => 1,
                    Some(d) => 32 + d.partition.as_ref().map_or(1, |p| 1 + p.wire_size()),
                };
                base + 2 + 8 + stamp.wire_size() + directive
            }
        }
    }

    /// The membership epoch stamped on this message, if it carries one
    /// (`Chkpt` and `Commit` do; a `ChkptRep` answers whatever epoch its
    /// round proposed).
    pub fn epoch(&self) -> Option<u64> {
        match self {
            ControlMsg::Chkpt { epoch, .. } | ControlMsg::Commit { epoch, .. } => Some(*epoch),
            ControlMsg::ChkptRep { .. } => None,
        }
    }

    /// The round this message belongs to.
    pub fn round(&self) -> u64 {
        match self {
            ControlMsg::Chkpt { round, .. }
            | ControlMsg::ChkptRep { round, .. }
            | ControlMsg::Commit { round, .. } => *round,
        }
    }

    /// The leadership term this message belongs to (coordinator-stamped
    /// on `Chkpt`/`Commit`; echoed from the proposal on `ChkptRep`).
    pub fn term(&self) -> u64 {
        match self {
            ControlMsg::Chkpt { term, .. }
            | ControlMsg::ChkptRep { term, .. }
            | ControlMsg::Commit { term, .. } => *term,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_positive_and_ordered() {
        let stamp = VectorTimestamp::new(2);
        let chkpt = ControlMsg::Chkpt { round: 1, stamp: stamp.clone(), epoch: 0, term: 0 };
        let rep = ControlMsg::ChkptRep {
            round: 1,
            site: 1,
            stamp: stamp.clone(),
            monitor: MonitorReport::default(),
            term: 0,
        };
        let commit = ControlMsg::Commit { round: 1, stamp, epoch: 0, term: 0, adapt: None };
        assert!(chkpt.wire_size() > 0);
        assert!(rep.wire_size() > chkpt.wire_size(), "reply carries a monitor report");
        assert!(commit.wire_size() > 0);
    }

    #[test]
    fn commit_with_adaptation_is_larger() {
        let stamp = VectorTimestamp::new(2);
        let bare =
            ControlMsg::Commit { round: 1, stamp: stamp.clone(), epoch: 0, term: 0, adapt: None };
        let full = ControlMsg::Commit {
            round: 1,
            stamp,
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective {
                params: MirrorParams::default(),
                mirror_fn: None,
                partition: None,
            }),
        };
        assert!(full.wire_size() > bare.wire_size());
        let partitioned = ControlMsg::Commit {
            round: 1,
            stamp: VectorTimestamp::new(2),
            epoch: 0,
            term: 0,
            adapt: Some(AdaptDirective {
                params: MirrorParams::default(),
                mirror_fn: None,
                partition: Some(PartitionMap::uniform(4)),
            }),
        };
        assert!(partitioned.wire_size() > full.wire_size(), "slot table costs wire bytes");
    }

    #[test]
    fn round_accessor() {
        let m = ControlMsg::Chkpt { round: 7, stamp: VectorTimestamp::empty(), epoch: 3, term: 2 };
        assert_eq!(m.round(), 7);
        assert_eq!(m.epoch(), Some(3));
        assert_eq!(m.term(), 2);
    }
}
