//! Mirroring parameters.
//!
//! The paper's `init()`/`set_params()` calls control (§3.2.1): (1) whether
//! events are mirrored independently or coalesced, (2) the maximum number of
//! events to coalesce, (3–4) per-type overwriting and its maximum sequence
//! length (kept in the [`crate::rules::RuleSet`]), (5) the checkpointing
//! frequency, and (6) adaptation parameters (see [`crate::adapt`]).
//!
//! Parameter sets are `Clone + Serialize` so the adaptation controller can
//! ship a full replacement parameter set to every mirror piggybacked on
//! checkpoint control messages, guaranteeing that "all mirrors are adapted
//! in the same fashion".
//!
//! These knobs decide *what* gets mirrored. The complementary transport
//! knobs — how the surviving frames ride the wire (batch size, byte bound,
//! flush linger) — live in `mirror_runtime::bridge::BatchPolicy`, which is
//! fixed per bridge rather than adapted at runtime.

use serde::{Deserialize, Serialize};

/// Identifies a tunable parameter for `set_adapt(p_id, p)`-style percentage
/// adjustments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamId {
    /// Maximum number of events coalesced into one mirror event.
    CoalesceMax,
    /// Checkpoint frequency, expressed as events-between-checkpoints
    /// (larger = less frequent checkpointing).
    CheckpointEvery,
    /// Maximum overwrite sequence length applied to position events.
    OverwriteMax,
}

/// The dynamic parameter set of the mirroring process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MirrorParams {
    /// Coalesce runs of ready-queue events before mirroring (vs. mirroring
    /// each event independently).
    pub coalesce: bool,
    /// Maximum number of events folded into one coalesced mirror event.
    pub coalesce_max: u32,
    /// Invoke the checkpointing procedure once per this many *sent* events
    /// (the paper's default is 50).
    pub checkpoint_every: u32,
    /// Maximum overwrite sequence length for position events; `0`/`1`
    /// disables overwriting. Mirrors `set_overwrite` for the FAA stream and
    /// is the knob the adaptation policy turns.
    pub overwrite_max: u32,
    /// Generation counter: bumped on every change so sites can discard
    /// stale parameter updates arriving out of order.
    pub generation: u64,
}

impl Default for MirrorParams {
    fn default() -> Self {
        // Paper defaults: independent mirroring of every event, checkpoint
        // once per 50 processed events, no overwriting.
        MirrorParams {
            coalesce: false,
            coalesce_max: 1,
            checkpoint_every: 50,
            overwrite_max: 0,
            generation: 0,
        }
    }
}

impl MirrorParams {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The first adaptive profile of §4.3: "coalesces up to 10 events and
    /// then produces one mirror event, thus overwriting up to 10 flight
    /// position events. Checkpointing is performed for every 50 events."
    pub fn profile_normal() -> Self {
        MirrorParams {
            coalesce: true,
            coalesce_max: 10,
            checkpoint_every: 50,
            overwrite_max: 10,
            generation: 0,
        }
    }

    /// The second adaptive profile of §4.3: "overwrites up to 20 flight
    /// position events and performs checkpointing every 100 events."
    pub fn profile_degraded() -> Self {
        MirrorParams {
            coalesce: true,
            coalesce_max: 20,
            checkpoint_every: 100,
            overwrite_max: 20,
            generation: 0,
        }
    }

    /// Apply a `set_adapt(p_id, p)`-style relative adjustment: modify
    /// parameter `p_id` by `percent` percent (negative shrinks). Values are
    /// clamped to sane minima (coalesce/overwrite ≥ 1, checkpoint ≥ 1).
    pub fn adjust_percent(&mut self, p_id: ParamId, percent: i32) {
        fn scaled(v: u32, percent: i32) -> u32 {
            let delta = (v as i64 * percent as i64) / 100;
            (v as i64 + delta).max(1) as u32
        }
        match p_id {
            ParamId::CoalesceMax => {
                self.coalesce_max = scaled(self.coalesce_max, percent);
                self.coalesce = self.coalesce_max > 1;
            }
            ParamId::CheckpointEvery => {
                self.checkpoint_every = scaled(self.checkpoint_every, percent)
            }
            ParamId::OverwriteMax => self.overwrite_max = scaled(self.overwrite_max, percent),
        }
        self.generation += 1;
    }

    /// Bump the generation (callers mutating fields directly should do this
    /// so stale updates can be detected).
    pub fn touch(&mut self) {
        self.generation += 1;
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MirrorParams::default();
        assert!(!p.coalesce);
        assert_eq!(p.checkpoint_every, 50);
        assert_eq!(p.overwrite_max, 0);
    }

    #[test]
    fn profiles_match_section_4_3() {
        let a = MirrorParams::profile_normal();
        assert_eq!((a.coalesce_max, a.checkpoint_every), (10, 50));
        let b = MirrorParams::profile_degraded();
        assert_eq!((b.coalesce_max, b.checkpoint_every), (20, 100));
        assert_eq!(b.overwrite_max, 20);
    }

    #[test]
    fn adjust_percent_scales_and_bumps_generation() {
        let mut p = MirrorParams::default();
        p.adjust_percent(ParamId::CheckpointEvery, -50);
        assert_eq!(p.checkpoint_every, 25);
        assert_eq!(p.generation, 1);
        p.adjust_percent(ParamId::CheckpointEvery, 100);
        assert_eq!(p.checkpoint_every, 50);
        assert_eq!(p.generation, 2);
    }

    #[test]
    fn adjust_percent_clamps_to_one() {
        let mut p = MirrorParams::default();
        p.coalesce_max = 2;
        p.adjust_percent(ParamId::CoalesceMax, -99);
        assert_eq!(p.coalesce_max, 1);
        assert!(!p.coalesce, "coalesce_max of 1 disables coalescing");
    }

    #[test]
    fn enabling_coalesce_via_adjust() {
        let mut p = MirrorParams::default();
        p.coalesce_max = 5;
        p.adjust_percent(ParamId::CoalesceMax, 100);
        assert_eq!(p.coalesce_max, 10);
        assert!(p.coalesce);
    }
}
