//! The status table.
//!
//! The paper's mirroring implementation "uses state to keep track of event
//! history, such as the number of overwriting events or the values of
//! combined events" (§3.2.1). That state lives in a *status table*
//! maintained at the main site: per flight it records how many updates of a
//! type have been overwritten since the last one was mirrored, which
//! trigger values have been observed (for complex-sequence rules), and the
//! partial progress of complex-tuple combination.

use std::collections::HashMap;

use crate::event::{Event, EventType, FlightId, FlightStatus};

/// Per-(flight, event-type) overwrite run state.
#[derive(Debug, Clone, Copy, Default)]
struct OverwriteRun {
    /// Position within the current run: 0 = nothing sent yet; otherwise the
    /// number of events (sent + discarded) since the run started.
    since_sent: u32,
}

/// Per-flight entry of the status table.
#[derive(Debug, Clone, Default)]
pub struct FlightEntry {
    /// Most recent status value observed for the flight.
    pub last_status: Option<FlightStatus>,
    /// Statuses observed so far (bitmask over `FlightStatus as u8`), used by
    /// complex-tuple rules to detect when all constituents have arrived.
    pub seen_statuses: u16,
    /// Overwrite run-length counters keyed by event type.
    overwrite: HashMap<EventType, OverwriteRun>,
    /// Whether a complex-sequence trigger has fired for this flight
    /// (per discarded type).
    pub seq_triggers: HashMap<EventType, bool>,
    /// Total events observed for this flight (all types).
    pub observed: u64,
    /// Total events discarded for this flight by semantic rules.
    pub discarded: u64,
}

/// The status table: application-level event history used by the semantic
/// mirroring rules.
#[derive(Debug, Default)]
pub struct StatusTable {
    flights: HashMap<FlightId, FlightEntry>,
}

impl StatusTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `event` was observed, updating last-status and the
    /// seen-status bitmask. Call once per incoming event before rule
    /// evaluation.
    pub fn observe(&mut self, event: &Event) {
        let entry = self.flights.entry(event.flight).or_default();
        entry.observed += 1;
        if let Some(s) = event.status_value() {
            entry.last_status = Some(s);
            entry.seen_statuses |= 1 << (s as u8);
        }
    }

    /// Has `flight` ever reported `status`?
    pub fn has_seen_status(&self, flight: FlightId, status: FlightStatus) -> bool {
        self.flights
            .get(&flight)
            .map(|e| e.seen_statuses & (1 << (status as u8)) != 0)
            .unwrap_or(false)
    }

    /// Most recent status observed for `flight`.
    pub fn last_status(&self, flight: FlightId) -> Option<FlightStatus> {
        self.flights.get(&flight).and_then(|e| e.last_status)
    }

    /// Overwrite bookkeeping: should an event of `ty` for `flight` be
    /// mirrored (`true`) or discarded as part of the current overwrite run
    /// (`false`), given a maximum run length of `max_len`?
    ///
    /// The paper's semantics: "send one event for each flight, followed by
    /// discarding the next `max_length - 1` many events of that type for the
    /// same flight". A `max_len` of 0 or 1 disables overwriting.
    pub fn overwrite_admits(&mut self, flight: FlightId, ty: EventType, max_len: u32) -> bool {
        if max_len <= 1 {
            return true;
        }
        let entry = self.flights.entry(flight).or_default();
        let run = entry.overwrite.entry(ty).or_default();
        if run.since_sent == 0 || run.since_sent >= max_len {
            // First event of a run (including the very first for this
            // flight): mirror it and start counting.
            run.since_sent = 1;
            true
        } else {
            run.since_sent += 1;
            entry.discarded += 1;
            false
        }
    }

    /// Arm (or disarm) the complex-sequence trigger: once armed, events of
    /// `discard_ty` for `flight` are discarded.
    pub fn set_seq_trigger(&mut self, flight: FlightId, discard_ty: EventType, armed: bool) {
        self.flights.entry(flight).or_default().seq_triggers.insert(discard_ty, armed);
    }

    /// Is the complex-sequence trigger armed for (`flight`, `discard_ty`)?
    pub fn seq_trigger_armed(&self, flight: FlightId, discard_ty: EventType) -> bool {
        self.flights
            .get(&flight)
            .and_then(|e| e.seq_triggers.get(&discard_ty))
            .copied()
            .unwrap_or(false)
    }

    /// Record a rule-driven discard (for statistics).
    pub fn record_discard(&mut self, flight: FlightId) {
        self.flights.entry(flight).or_default().discarded += 1;
    }

    /// Number of flights tracked.
    pub fn flight_count(&self) -> usize {
        self.flights.len()
    }

    /// Per-flight entry, if the flight has been observed.
    pub fn entry(&self, flight: FlightId) -> Option<&FlightEntry> {
        self.flights.get(&flight)
    }

    /// Total events discarded by semantic rules across all flights.
    pub fn total_discarded(&self) -> u64 {
        self.flights.values().map(|e| e.discarded).sum()
    }

    /// Total events observed across all flights.
    pub fn total_observed(&self) -> u64 {
        self.flights.values().map(|e| e.observed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FlightStatus, PositionFix};

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 0.0, speed_kts: 0.0, heading_deg: 0.0 }
    }

    #[test]
    fn observe_tracks_last_status_and_bitmask() {
        let mut t = StatusTable::new();
        t.observe(&Event::delta_status(1, 7, FlightStatus::Boarding));
        t.observe(&Event::delta_status(2, 7, FlightStatus::Departed));
        assert_eq!(t.last_status(7), Some(FlightStatus::Departed));
        assert!(t.has_seen_status(7, FlightStatus::Boarding));
        assert!(t.has_seen_status(7, FlightStatus::Departed));
        assert!(!t.has_seen_status(7, FlightStatus::Landed));
        assert!(!t.has_seen_status(8, FlightStatus::Boarding));
    }

    #[test]
    fn overwrite_disabled_for_len_leq_1() {
        let mut t = StatusTable::new();
        for _ in 0..5 {
            assert!(t.overwrite_admits(1, EventType::FaaPosition, 0));
            assert!(t.overwrite_admits(1, EventType::FaaPosition, 1));
        }
    }

    #[test]
    fn overwrite_keeps_one_in_max_len() {
        let mut t = StatusTable::new();
        // Observe the flight first (as the receive path does).
        t.observe(&Event::faa_position(1, 42, fix()));
        let max_len = 4;
        let mut admitted = 0;
        for i in 0..20 {
            // First event admitted (fresh flight), then 1 in every 4.
            if t.overwrite_admits(42, EventType::FaaPosition, max_len) {
                admitted += 1;
            }
            t.observe(&Event::faa_position(i + 2, 42, fix()));
        }
        // 20 events, runs of 4: first admitted at once, then every 4th.
        assert!(admitted >= 20 / max_len as usize, "admitted {admitted}");
        assert!(admitted <= 20 / max_len as usize + 1, "admitted {admitted}");
    }

    #[test]
    fn overwrite_runs_are_per_flight_and_per_type() {
        let mut t = StatusTable::new();
        t.observe(&Event::faa_position(1, 1, fix()));
        t.observe(&Event::faa_position(1, 2, fix()));
        // Drain flight 1 into mid-run…
        assert!(t.overwrite_admits(1, EventType::FaaPosition, 3));
        assert!(!t.overwrite_admits(1, EventType::FaaPosition, 3));
        // …flight 2's run is independent.
        assert!(t.overwrite_admits(2, EventType::FaaPosition, 3));
        // …and a different type on flight 1 is independent too.
        assert!(t.overwrite_admits(1, EventType::DeltaStatus, 3));
    }

    #[test]
    fn seq_triggers_arm_and_disarm() {
        let mut t = StatusTable::new();
        assert!(!t.seq_trigger_armed(5, EventType::FaaPosition));
        t.set_seq_trigger(5, EventType::FaaPosition, true);
        assert!(t.seq_trigger_armed(5, EventType::FaaPosition));
        assert!(!t.seq_trigger_armed(6, EventType::FaaPosition));
        t.set_seq_trigger(5, EventType::FaaPosition, false);
        assert!(!t.seq_trigger_armed(5, EventType::FaaPosition));
    }

    #[test]
    fn discard_statistics_accumulate() {
        let mut t = StatusTable::new();
        t.observe(&Event::faa_position(1, 9, fix()));
        t.record_discard(9);
        t.record_discard(9);
        assert_eq!(t.total_discarded(), 2);
        assert_eq!(t.total_observed(), 1);
        assert_eq!(t.flight_count(), 1);
    }
}
