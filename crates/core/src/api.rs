//! The mirroring API — the paper's Table 1.
//!
//! | paper call | here |
//! |---|---|
//! | `init(int c, int number, int l)` | [`MirrorConfig::init`] + builder methods |
//! | `mirror()` | [`MirrorHandle::mirror`] |
//! | `fwd()` | [`MirrorHandle::fwd`] |
//! | `set_mirror(void* func)` | [`MirrorHandle::set_mirror`] |
//! | `set_fwd(void* func)` | [`MirrorHandle::set_fwd`] |
//! | `set_params(int c, int number, int f)` | [`MirrorHandle::set_params`] |
//! | `set_overwrite(ev_type t, int l)` | [`MirrorHandle::set_overwrite`] |
//! | `set_complex_seq(t1, *value, t2)` | [`MirrorHandle::set_complex_seq`] |
//! | `set_complex_tuple(*t, *values, n)` | [`MirrorHandle::set_complex_tuple`] |
//! | `set_adapt(int p_id, int p)` | [`MirrorHandle::set_adapt`] |
//! | `set_monitor_values(index, p, s)` | [`MirrorHandle::set_monitor_values`] |
//!
//! [`MirrorConfig`] configures a site before launch; [`MirrorHandle`] wraps
//! a running [`AuxUnit`] behind a mutex so parameters can be changed
//! dynamically from any thread, exactly as the paper allows ("default
//! mirroring can be modified during the initialization process or
//! dynamically").

use std::sync::{Arc, Mutex};

use crate::adapt::{AdaptAction, MonitorKind, MonitorThresholds};
use crate::aux_unit::{AuxAction, AuxInput, AuxUnit, SiteId};
use crate::event::{EventType, FlightStatus};
use crate::mirrorfn::MirrorDecision;
use crate::params::{MirrorParams, ParamId};
use crate::rules::{Rule, RuleSet};

/// Pre-launch configuration of a mirroring site (the `init()` call).
#[derive(Debug, Clone)]
pub struct MirrorConfig {
    params: MirrorParams,
    rules: RuleSet,
    monitors: Vec<(MonitorKind, MonitorThresholds)>,
    adapt_action: Option<AdaptAction>,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            params: MirrorParams::default(),
            rules: RuleSet::new(),
            monitors: Vec::new(),
            adapt_action: None,
        }
    }
}

impl MirrorConfig {
    /// `init(int c, int number, int l)` — initialize mirroring with the
    /// paper's three positional options: coalescing on/off, the maximum
    /// number of events to coalesce, and the checkpoint frequency. Passing
    /// the defaults (`false, 1, 50`) yields default mirroring.
    pub fn init(coalesce: bool, coalesce_max: u32, checkpoint_every: u32) -> Self {
        let mut cfg = MirrorConfig::default();
        cfg.params.coalesce = coalesce;
        cfg.params.coalesce_max = coalesce_max.max(1);
        cfg.params.checkpoint_every = checkpoint_every.max(1);
        cfg
    }

    /// Start from explicit parameters.
    pub fn with_params(params: MirrorParams) -> Self {
        MirrorConfig { params, ..Default::default() }
    }

    /// Add a semantic rule.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Install monitored-variable thresholds.
    pub fn monitor(mut self, kind: MonitorKind, thresholds: MonitorThresholds) -> Self {
        self.monitors.push((kind, thresholds));
        self
    }

    /// Install the adaptation action.
    pub fn adapt(mut self, action: AdaptAction) -> Self {
        self.adapt_action = Some(action);
        self
    }

    /// The configured parameters.
    pub fn params(&self) -> &MirrorParams {
        &self.params
    }

    /// Build the central site's auxiliary unit mirroring to `mirrors`.
    pub fn build_central(self, mirrors: Vec<SiteId>) -> AuxUnit {
        let mut aux = AuxUnit::central(mirrors, self.params);
        aux.set_rules(self.rules);
        if let Some(ctrl) = aux.adaptation_mut() {
            for (kind, th) in self.monitors {
                ctrl.set_monitor_values(kind, th);
            }
            if let Some(action) = self.adapt_action {
                ctrl.set_action(action);
            }
        }
        aux
    }

    /// Build a mirror site's auxiliary unit.
    pub fn build_mirror(self, site: SiteId) -> AuxUnit {
        let mut aux = AuxUnit::mirror(site, self.params);
        aux.set_rules(self.rules);
        aux
    }
}

/// A thread-safe handle onto a running auxiliary unit, exposing the dynamic
/// half of the Table-1 API.
#[derive(Clone)]
pub struct MirrorHandle {
    inner: Arc<Mutex<AuxUnit>>,
}

impl MirrorHandle {
    /// Wrap an auxiliary unit.
    pub fn new(aux: AuxUnit) -> Self {
        MirrorHandle { inner: Arc::new(Mutex::new(aux)) }
    }

    /// Access the shared unit (for embeddings that drive it directly).
    pub fn unit(&self) -> &Arc<Mutex<AuxUnit>> {
        &self.inner
    }

    /// Run `f` with the unit locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut AuxUnit) -> R) -> R {
        f(&mut self.inner.lock().expect("aux unit poisoned"))
    }

    /// `mirror()` — execute the mirroring function over whatever is pending
    /// (drains the ready queue); returns the resulting actions for the
    /// embedding to perform.
    pub fn mirror(&self) -> Vec<AuxAction> {
        self.with(|aux| aux.handle(AuxInput::Flush))
    }

    /// Idle-time checkpoint liveness (see
    /// [`AuxUnit::idle_checkpoint`]); returns the actions to perform.
    pub fn idle_checkpoint(&self) -> Vec<AuxAction> {
        self.with(|aux| aux.idle_checkpoint())
    }

    /// `fwd()` — feed one event through the unit (stamping, rules,
    /// forwarding, mirroring); returns the actions to perform. Accepts an
    /// owned event or an already-shared `Arc<Event>` (the zero-copy path
    /// used by the runtime's channel fan-out).
    pub fn fwd(&self, event: impl Into<std::sync::Arc<crate::event::Event>>) -> Vec<AuxAction> {
        let event = event.into();
        self.with(|aux| aux.handle(AuxInput::Data(event)))
    }

    /// Replay retained backup-queue events from send index `idx` on (see
    /// [`AuxUnit::retransmit_from`]). Replayed events share their
    /// allocation with the backup queue.
    pub fn retransmit_from(&self, idx: u64) -> Vec<(u64, std::sync::Arc<crate::event::Event>)> {
        self.with(|aux| aux.retransmit_from(idx))
    }

    /// Every send index strictly below this value is covered by a
    /// committed checkpoint (see
    /// [`crate::queue::BackupQueue::truncation_floor`]): the durable
    /// truncation watermark a write-ahead journal may advance to.
    pub fn truncation_floor(&self) -> u64 {
        self.with(|aux| aux.truncation_floor())
    }

    /// Declare a mirror failed immediately — the transport layer knows its
    /// link is dead (see [`AuxUnit::declare_mirror_failed`]).
    pub fn declare_mirror_failed(&self, site: crate::SiteId) -> Vec<AuxAction> {
        self.with(|aux| aux.declare_mirror_failed(site))
    }

    /// `set_mirror(func)` — install a custom per-event mirroring function.
    pub fn set_mirror<F>(&self, label: &'static str, f: F)
    where
        F: FnMut(&crate::event::Event, &MirrorParams) -> MirrorDecision + Send + 'static,
    {
        self.with(|aux| aux.set_mirror_fn(Box::new(crate::mirrorfn::FnMirror::new(label, f))));
    }

    /// `set_fwd(func)` — install a custom forwarding function: it decides,
    /// per event, whether (and in what form) the local main unit sees it.
    pub fn set_fwd<F>(&self, label: &'static str, f: F)
    where
        F: FnMut(&crate::event::Event, &MirrorParams) -> MirrorDecision + Send + 'static,
    {
        self.with(|aux| aux.set_fwd_fn(Box::new(crate::mirrorfn::FnMirror::new(label, f))));
    }

    /// `set_params(int c, int number, int f)` — coalesce up to `number`
    /// events (`c` enables), checkpoint every `f` sent events.
    pub fn set_params(&self, coalesce: bool, coalesce_max: u32, checkpoint_every: u32) {
        self.with(|aux| {
            let mut p = aux.params().clone();
            p.coalesce = coalesce;
            p.coalesce_max = coalesce_max.max(1);
            p.checkpoint_every = checkpoint_every.max(1);
            aux.set_params(p);
        });
    }

    /// `set_overwrite(ev_type t, int l)` — allow overwriting of events of
    /// type `ty` with a maximum sequence length `max_len`.
    pub fn set_overwrite(&self, ty: EventType, max_len: u32) {
        self.with(|aux| {
            aux.rules_mut().replace(Rule::Overwrite { ty, max_len });
            let mut p = aux.params().clone();
            p.overwrite_max = max_len;
            aux.set_params(p);
        });
    }

    /// `set_complex_seq(t1, *value, t2)` — discard events of `discard_ty`
    /// once an event of `trigger_ty` with status `trigger_value` has been
    /// seen for the flight.
    pub fn set_complex_seq(
        &self,
        trigger_ty: EventType,
        trigger_value: FlightStatus,
        discard_ty: EventType,
    ) {
        self.with(|aux| {
            aux.rules_mut().replace(Rule::ComplexSeq { trigger_ty, trigger_value, discard_ty })
        });
    }

    /// `set_complex_tuple(*t, *values, n)` — combine the given status
    /// values into a single derived event with status `emit`.
    pub fn set_complex_tuple(&self, parts: Vec<FlightStatus>, emit: FlightStatus) {
        self.with(|aux| aux.rules_mut().replace(Rule::ComplexTuple { parts, emit }));
    }

    /// `set_adapt(int p_id, int p)` — when thresholds are crossed, modify
    /// parameter `p_id` by `percent` percent.
    pub fn set_adapt(&self, p_id: ParamId, percent: i32) {
        self.with(|aux| {
            if let Some(ctrl) = aux.adaptation_mut() {
                ctrl.set_action(AdaptAction::AdjustParam { id: p_id, percent });
            }
        });
    }

    /// Install a full adaptation action (the §4.3 two-profile switch).
    pub fn set_adapt_action(&self, action: AdaptAction) {
        self.with(|aux| {
            if let Some(ctrl) = aux.adaptation_mut() {
                ctrl.set_action(action);
            }
        });
    }

    /// `set_monitor_values(index, p, s)` — set the primary and secondary
    /// thresholds for a monitored variable.
    pub fn set_monitor_values(&self, kind: MonitorKind, primary: u64, secondary: u64) {
        self.with(|aux| {
            if let Some(ctrl) = aux.adaptation_mut() {
                ctrl.set_monitor_values(kind, MonitorThresholds::new(primary, secondary));
            }
        });
    }

    /// Install an elastic-capacity policy (central site only): sustained
    /// pending-request pressure then directs mirror spawn/retire once per
    /// checkpoint round (surfaced as
    /// [`AuxAction::ScaleDirective`](crate::aux_unit::AuxAction)).
    pub fn set_scale_policy(&self, policy: crate::adapt::ScalePolicy) {
        self.with(|aux| aux.set_scale_policy(policy));
    }

    /// Current parameters (snapshot).
    pub fn params(&self) -> MirrorParams {
        self.with(|aux| aux.params().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux_unit::AuxAction;
    use crate::event::{Event, PositionFix};
    use crate::mirrorfn::MirrorFnKind;

    fn pos(seq: u64, flight: u32) -> Event {
        Event::faa_position(
            seq,
            flight,
            PositionFix { lat: 0.0, lon: 0.0, alt_ft: 1.0, speed_kts: 1.0, heading_deg: 0.0 },
        )
    }

    #[test]
    fn init_maps_positional_options() {
        let cfg = MirrorConfig::init(true, 10, 50);
        assert!(cfg.params().coalesce);
        assert_eq!(cfg.params().coalesce_max, 10);
        assert_eq!(cfg.params().checkpoint_every, 50);
    }

    #[test]
    fn init_clamps_zeroes() {
        let cfg = MirrorConfig::init(false, 0, 0);
        assert_eq!(cfg.params().coalesce_max, 1);
        assert_eq!(cfg.params().checkpoint_every, 1);
    }

    #[test]
    fn handle_set_overwrite_takes_effect_dynamically() {
        let aux = MirrorConfig::default().build_central(vec![1]);
        let h = MirrorHandle::new(aux);
        // Default: everything mirrored.
        let out = h.fwd(pos(1, 1));
        assert!(out.iter().any(|a| matches!(a, AuxAction::Mirror { .. })));
        // Install 1-in-10 overwriting.
        h.set_overwrite(EventType::FaaPosition, 10);
        let mut mirrored = 0;
        for seq in 2..=41 {
            mirrored +=
                h.fwd(pos(seq, 1)).iter().filter(|a| matches!(a, AuxAction::Mirror { .. })).count();
        }
        assert!(mirrored <= 5, "overwriting must suppress most events, got {mirrored}");
        assert_eq!(h.params().overwrite_max, 10);
    }

    #[test]
    fn handle_set_params_updates_checkpoint_frequency() {
        let aux = MirrorConfig::default().build_central(vec![1]);
        let h = MirrorHandle::new(aux);
        h.set_params(true, 20, 100);
        let p = h.params();
        assert!(p.coalesce);
        assert_eq!(p.coalesce_max, 20);
        assert_eq!(p.checkpoint_every, 100);
    }

    #[test]
    fn handle_custom_fwd_fn_filters_main_unit_path() {
        let aux = MirrorConfig::default().build_central(vec![1]);
        let h = MirrorHandle::new(aux);
        // Main unit only sees even-seq events; mirroring is untouched.
        h.set_fwd("even-only", |e: &crate::event::Event, _: &MirrorParams| {
            if e.seq.is_multiple_of(2) {
                MirrorDecision::Send
            } else {
                MirrorDecision::Drop
            }
        });
        let mut fwd = 0;
        let mut mirrored = 0;
        for seq in 1..=10 {
            for a in h.fwd(pos(seq, 1)) {
                match a {
                    AuxAction::ForwardToMain(_) => fwd += 1,
                    AuxAction::Mirror { .. } => mirrored += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(fwd, 5);
        assert_eq!(mirrored, 10);
    }

    #[test]
    fn handle_custom_mirror_fn() {
        let aux = MirrorConfig::default().build_central(vec![1]);
        let h = MirrorHandle::new(aux);
        h.set_mirror("drop-all", |_, _| MirrorDecision::Drop);
        let out = h.fwd(pos(1, 1));
        assert!(out.iter().all(|a| !matches!(a, AuxAction::Mirror { .. })));
        assert!(out.iter().any(|a| matches!(a, AuxAction::ForwardToMain(_))));
    }

    #[test]
    fn handle_configures_adaptation() {
        let aux = MirrorConfig::default().build_central(vec![1, 2]);
        let h = MirrorHandle::new(aux);
        h.set_monitor_values(MonitorKind::PendingRequests, 100, 60);
        h.set_adapt_action(AdaptAction::SwitchMirrorFn {
            normal: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
            engaged: MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 },
        });
        h.with(|aux| {
            let ctrl = aux.adaptation_mut().unwrap();
            ctrl.record_report(
                1,
                crate::adapt::MonitorReport { pending_requests: 500, ..Default::default() },
            );
            assert!(matches!(ctrl.decide(), crate::adapt::AdaptDecision::Engage(_)));
        });
    }

    #[test]
    fn config_builder_installs_rules_and_monitors() {
        let aux = MirrorConfig::init(false, 1, 50)
            .rule(Rule::Overwrite { ty: EventType::FaaPosition, max_len: 10 })
            .monitor(MonitorKind::ReadyQueueLen, MonitorThresholds::new(50, 25))
            .adapt(AdaptAction::AdjustParam { id: ParamId::CheckpointEvery, percent: 100 })
            .build_central(vec![1]);
        assert_eq!(aux.rules().rules().len(), 1);
    }
}
