//! Vector timestamps.
//!
//! The paper (§3.3) timestamps every event as it enters the primary site
//! with a *vector* timestamp in which each component corresponds to one
//! incoming stream; event order within a stream is captured by the stream's
//! own sequence numbers. Checkpointing agrees on a committable timestamp by
//! taking componentwise minima across sites, and backup queues are pruned of
//! every event whose stamp is dominated by the committed stamp.

use serde::{Deserialize, Serialize};

/// Stream-local sequence number. `0` means "no event from this stream yet";
/// real events are numbered from 1.
pub type Seq = u64;

/// Result of comparing two vector timestamps under the componentwise
/// partial order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampOrdering {
    /// Componentwise equal.
    Equal,
    /// Strictly dominated (≤ everywhere, < somewhere).
    Before,
    /// Strictly dominating.
    After,
    /// Incomparable.
    Concurrent,
}

/// A vector timestamp: one [`Seq`] per incoming stream.
///
/// Timestamps of different widths are compared by implicitly zero-extending
/// the shorter one — a stream that has produced nothing is at sequence 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct VectorTimestamp(Vec<Seq>);

impl VectorTimestamp {
    /// The empty (zero-width) timestamp; dominated by or equal to every
    /// other timestamp.
    pub fn empty() -> Self {
        VectorTimestamp(Vec::new())
    }

    /// An all-zero timestamp with `streams` components.
    pub fn new(streams: usize) -> Self {
        VectorTimestamp(vec![0; streams])
    }

    /// Build directly from components.
    pub fn from_components(c: Vec<Seq>) -> Self {
        VectorTimestamp(c)
    }

    /// Number of components.
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// True if no component has advanced past zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&s| s == 0)
    }

    /// Component for `stream`, zero-extended.
    pub fn get(&self, stream: usize) -> Seq {
        self.0.get(stream).copied().unwrap_or(0)
    }

    /// Record that `stream` has reached sequence `seq`, widening if needed.
    /// Components only move forward; a stale smaller `seq` is ignored.
    pub fn advance(&mut self, stream: usize, seq: Seq) {
        if stream >= self.0.len() {
            self.0.resize(stream + 1, 0);
        }
        if seq > self.0[stream] {
            self.0[stream] = seq;
        }
    }

    /// Componentwise maximum (join of the lattice).
    pub fn merge(&mut self, other: &VectorTimestamp) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &s) in other.0.iter().enumerate() {
            if s > self.0[i] {
                self.0[i] = s;
            }
        }
    }

    /// Componentwise minimum (meet of the lattice). The result's width is
    /// the *maximum* of the two widths; missing components count as 0.
    pub fn meet(&self, other: &VectorTimestamp) -> VectorTimestamp {
        let w = self.0.len().max(other.0.len());
        let mut out = Vec::with_capacity(w);
        for i in 0..w {
            out.push(self.get(i).min(other.get(i)));
        }
        VectorTimestamp(out)
    }

    /// Componentwise maximum, by value.
    pub fn join(&self, other: &VectorTimestamp) -> VectorTimestamp {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Compare under the componentwise partial order (with zero-extension).
    pub fn compare(&self, other: &VectorTimestamp) -> StampOrdering {
        let w = self.0.len().max(other.0.len());
        let (mut some_lt, mut some_gt) = (false, false);
        for i in 0..w {
            let (a, b) = (self.get(i), other.get(i));
            if a < b {
                some_lt = true;
            } else if a > b {
                some_gt = true;
            }
        }
        match (some_lt, some_gt) {
            (false, false) => StampOrdering::Equal,
            (true, false) => StampOrdering::Before,
            (false, true) => StampOrdering::After,
            (true, true) => StampOrdering::Concurrent,
        }
    }

    /// `self ≤ other` componentwise — i.e. an event stamped `self` is
    /// covered by a checkpoint at `other`.
    pub fn dominated_by(&self, other: &VectorTimestamp) -> bool {
        matches!(self.compare(other), StampOrdering::Equal | StampOrdering::Before)
    }

    /// Raw components (zero-extended access via [`get`](Self::get) is
    /// usually preferable).
    pub fn components(&self) -> &[Seq] {
        &self.0
    }

    /// Bytes this stamp occupies on the wire: each component is a `u64`.
    /// (The component count is carried in the event header.)
    pub fn wire_size(&self) -> usize {
        self.0.len() * 8
    }
}

impl std::fmt::Display for VectorTimestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(c: &[Seq]) -> VectorTimestamp {
        VectorTimestamp::from_components(c.to_vec())
    }

    #[test]
    fn empty_is_dominated_by_everything() {
        let e = VectorTimestamp::empty();
        assert!(e.dominated_by(&vt(&[0, 0])));
        assert!(e.dominated_by(&vt(&[3, 1])));
        assert_eq!(e.compare(&vt(&[0])), StampOrdering::Equal);
    }

    #[test]
    fn advance_only_moves_forward() {
        let mut t = VectorTimestamp::new(2);
        t.advance(0, 5);
        assert_eq!(t.get(0), 5);
        t.advance(0, 3); // stale
        assert_eq!(t.get(0), 5);
        t.advance(3, 1); // widens
        assert_eq!(t.width(), 4);
        assert_eq!(t.get(3), 1);
    }

    #[test]
    fn compare_covers_all_cases() {
        assert_eq!(vt(&[1, 2]).compare(&vt(&[1, 2])), StampOrdering::Equal);
        assert_eq!(vt(&[1, 1]).compare(&vt(&[1, 2])), StampOrdering::Before);
        assert_eq!(vt(&[2, 2]).compare(&vt(&[1, 2])), StampOrdering::After);
        assert_eq!(vt(&[2, 1]).compare(&vt(&[1, 2])), StampOrdering::Concurrent);
    }

    #[test]
    fn compare_zero_extends() {
        assert_eq!(vt(&[1]).compare(&vt(&[1, 0])), StampOrdering::Equal);
        assert_eq!(vt(&[1]).compare(&vt(&[1, 3])), StampOrdering::Before);
        assert_eq!(vt(&[1, 4]).compare(&vt(&[1])), StampOrdering::After);
    }

    #[test]
    fn meet_and_join() {
        let a = vt(&[3, 1]);
        let b = vt(&[2, 5, 7]);
        assert_eq!(a.meet(&b), vt(&[2, 1, 0]));
        assert_eq!(a.join(&b), vt(&[3, 5, 7]));
    }

    #[test]
    fn merge_widens_and_maxes() {
        let mut a = vt(&[3]);
        a.merge(&vt(&[1, 9]));
        assert_eq!(a, vt(&[3, 9]));
    }

    #[test]
    fn display_formats_components() {
        assert_eq!(vt(&[1, 2]).to_string(), "⟨1,2⟩");
    }
}
