//! # mirror-core — adaptable event mirroring for cluster servers
//!
//! This crate implements the primary contribution of *Adaptable Mirroring in
//! Cluster Servers* (Gavrilovska, Schwan, Oleson — HPDC 2001): a
//! middleware-level framework that continuously mirrors streaming update
//! events received by the central node of a cluster server to other cluster
//! nodes, so that the load of processing those events and of answering
//! bursty client requests (e.g. thin-client state initialization) can be
//! spread across the cluster.
//!
//! The framework's distinguishing features, all implemented here:
//!
//! * **Application-specific mirroring** ([`rules`], [`mirrorfn`]) — because
//!   mirroring happens at the middleware level rather than as network
//!   multicast, application semantics can shrink mirroring traffic:
//!   type/content filters, event *coalescing*, *overwriting* sequences of
//!   superseded events, and complex sequence/tuple rules (e.g. discard FAA
//!   position events once a `flight landed` status has been seen).
//! * **Checkpointing** ([`checkpoint`]) — a modified two-phase commit that
//!   keeps mirror application views consistent while letting every site
//!   prune its backup queue; it needs no NO-votes, no aborts and no
//!   timeouts because a later checkpoint subsumes an incomplete earlier one.
//! * **Adaptive mirroring** ([`adapt`]) — monitored variables with
//!   primary/secondary (hysteresis) thresholds drive runtime switches
//!   between mirroring modes, trading mirror consistency for client-visible
//!   quality of service; decisions are made centrally and piggybacked on
//!   checkpoint control traffic.
//!
//! The site logic is written *sans-IO*: the auxiliary unit
//! ([`aux_unit::AuxUnit`]) is a deterministic step machine that consumes
//! [`aux_unit::AuxInput`]s and emits [`aux_unit::AuxAction`]s. The same
//! logic therefore runs unchanged under the real threads-and-channels
//! runtime (`mirror-runtime`) and under the deterministic discrete-event
//! cluster simulator (`mirror-sim`) used to regenerate the paper's figures.
//!
//! The public configuration surface mirrors the paper's Table 1 API; see
//! [`api`].

#![warn(missing_docs)]

pub mod adapt;
pub mod api;
pub mod aux_unit;
pub mod checkpoint;
pub mod control;
pub mod event;
pub mod hashing;
pub mod membership;
pub mod metrics;
pub mod mirrorfn;
pub mod params;
pub mod partition;
pub mod queue;
pub mod ring;
pub mod rules;
pub mod status;
pub mod timestamp;

pub use adapt::{
    AdaptAction, AdaptationController, MonitorKind, MonitorThresholds, ScaleDecision, ScalePolicy,
};
pub use api::{MirrorConfig, MirrorHandle};
pub use aux_unit::{AuxAction, AuxInput, AuxUnit, SiteId, CENTRAL_SITE};
pub use checkpoint::{CentralCheckpointer, CheckpointMsg, MainUnitResponder, MirrorRelay};
pub use control::ControlMsg;
pub use event::{Event, EventBody, EventType, FlightId, FlightStatus, PositionFix, StreamId};
pub use hashing::{fib_mix64, fib_slot, BuildFlightHasher, FlightIdHasher, FIB_MULT};
pub use membership::{MembershipError, MembershipRegistry, MembershipView, SiteState};
pub use mirrorfn::{MirrorDecision, MirrorFn, MirrorFnKind};
pub use params::MirrorParams;
pub use partition::{GroupId, PartitionMap, PARTITION_SLOTS};
pub use queue::{BackupQueue, ReadyQueue};
pub use ring::{
    mpsc, spsc, MpscReceiver, MpscSender, RingRecv, RingSend, RingStats, SpscReceiver, SpscSender,
};
pub use rules::{RuleOutcome, RuleSet};
pub use status::StatusTable;
pub use timestamp::{Seq, StampOrdering, VectorTimestamp};
