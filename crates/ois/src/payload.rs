//! Messages exchanged between simulated cluster nodes.

use std::sync::Arc;

use mirror_core::event::Event;
use mirror_core::ControlMsg;
use mirror_workload::requests::Request;

/// A message delivered to a node in the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An update event arriving from the wide-area collection
    /// infrastructure (delivered to the central site only).
    Source(Event),
    /// A mirrored event on a central→mirror data channel. Shared with the
    /// sender's backup queue and every other mirror's copy: the simulated
    /// fan-out, like the real one, is a reference-count bump per link.
    MirrorData(Arc<Event>),
    /// A checkpoint/adaptation message on a control channel.
    Control(ControlMsg),
    /// A client's initial-state request arriving at a site.
    Request(Request),
    /// Self-message: serve the next buffered client request.
    ServeNext,
    /// A snapshot response on a site→client link.
    Snapshot {
        /// Request being answered.
        request_id: u64,
        /// When the request arrived at the OIS (for latency accounting).
        issued_us: u64,
        /// Response size.
        bytes: usize,
    },
    /// A regular state update pushed to operational-data clients.
    ClientUpdate {
        /// Update size.
        bytes: usize,
        /// Ingress time of the underlying event (sink computes delivery
        /// delay).
        ingress_us: u64,
    },
    /// Sending-task wakeup: drain coalescing buffers.
    Flush,
}

impl Payload {
    /// Bytes this payload occupies on a link (used when a send's byte count
    /// should match the payload; sites usually pass explicit sizes).
    pub fn nominal_bytes(&self) -> usize {
        match self {
            Payload::Source(e) => e.wire_size(),
            Payload::MirrorData(e) => e.wire_size(),
            Payload::Control(c) => c.wire_size(),
            Payload::Request(_) => 64,
            Payload::ServeNext | Payload::Flush => 0,
            Payload::Snapshot { bytes, .. } | Payload::ClientUpdate { bytes, .. } => *bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::event::FlightStatus;

    #[test]
    fn nominal_bytes_match_event_wire_size() {
        let e = Event::delta_status(1, 2, FlightStatus::Landed).with_total_size(512);
        assert_eq!(Payload::Source(e.clone()).nominal_bytes(), 512);
        assert_eq!(Payload::MirrorData(Arc::new(e)).nominal_bytes(), 512);
        assert_eq!(Payload::Flush.nominal_bytes(), 0);
        assert_eq!(Payload::Snapshot { request_id: 1, issued_us: 0, bytes: 9 }.nominal_bytes(), 9);
    }
}
