//! Client-request load balancing across mirror sites.
//!
//! "Clients' requests for IS state may be satisfied not just by one, but by
//! any one of the mirror machines. The resulting parallelization of request
//! processing for clients coupled with simple load balancing strategies
//! enables us to offer timely services" (§1). The paper cites prior work
//! showing simple strategies suffice [1, 10]; we provide round-robin and
//! least-pending, plus the failover behaviour the paper's §6 lists as
//! future work: a site marked failed stops receiving requests and its share
//! redistributes over the survivors.

use mirror_core::aux_unit::SiteId;

/// Balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Rotate through live sites.
    RoundRobin,
    /// Pick the live site with the smallest reported backlog.
    LeastPending,
}

/// A request load balancer over a set of sites.
#[derive(Debug, Clone)]
pub struct Balancer {
    sites: Vec<SiteId>,
    alive: Vec<bool>,
    pending: Vec<u64>,
    next: usize,
    policy: BalancerPolicy,
    /// Requests dispatched per site (index-aligned with `sites`).
    pub dispatched: Vec<u64>,
}

impl Balancer {
    /// A balancer over `sites` with the given policy.
    pub fn new(sites: Vec<SiteId>, policy: BalancerPolicy) -> Self {
        assert!(!sites.is_empty(), "balancer needs at least one site");
        let n = sites.len();
        Balancer {
            sites,
            alive: vec![true; n],
            pending: vec![0; n],
            next: 0,
            policy,
            dispatched: vec![0; n],
        }
    }

    /// Sites under management.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Number of live sites.
    pub fn live_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Mark a site failed: it stops receiving requests.
    pub fn mark_failed(&mut self, site: SiteId) {
        if let Some(i) = self.sites.iter().position(|&s| s == site) {
            self.alive[i] = false;
        }
    }

    /// Mark a site recovered.
    pub fn mark_recovered(&mut self, site: SiteId) {
        if let Some(i) = self.sites.iter().position(|&s| s == site) {
            self.alive[i] = true;
        }
    }

    /// Update a site's reported backlog (for [`BalancerPolicy::LeastPending`]).
    pub fn report_pending(&mut self, site: SiteId, pending: u64) {
        if let Some(i) = self.sites.iter().position(|&s| s == site) {
            self.pending[i] = pending;
        }
    }

    /// Pick the site for the next request; `None` if every site is down.
    pub fn pick(&mut self) -> Option<SiteId> {
        if self.live_count() == 0 {
            return None;
        }
        let idx = match self.policy {
            BalancerPolicy::RoundRobin => {
                let n = self.sites.len();
                let mut idx = self.next % n;
                while !self.alive[idx] {
                    idx = (idx + 1) % n;
                }
                self.next = idx + 1;
                idx
            }
            BalancerPolicy::LeastPending => {
                let mut best = None;
                for i in 0..self.sites.len() {
                    if !self.alive[i] {
                        continue;
                    }
                    match best {
                        None => best = Some(i),
                        Some(b) if self.pending[i] < self.pending[b] => best = Some(i),
                        _ => {}
                    }
                }
                best.expect("live_count > 0")
            }
        };
        self.dispatched[idx] += 1;
        // Optimistically count the dispatch toward the backlog so bursts
        // spread even between pending reports.
        self.pending[idx] += 1;
        Some(self.sites[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_evenly() {
        let mut b = Balancer::new(vec![1, 2, 3], BalancerPolicy::RoundRobin);
        let picks: Vec<SiteId> = (0..9).map(|_| b.pick().unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(b.dispatched, vec![3, 3, 3]);
    }

    #[test]
    fn failed_site_is_skipped_and_share_redistributes() {
        let mut b = Balancer::new(vec![1, 2, 3], BalancerPolicy::RoundRobin);
        b.mark_failed(2);
        let picks: Vec<SiteId> = (0..6).map(|_| b.pick().unwrap()).collect();
        assert!(picks.iter().all(|&s| s != 2));
        assert_eq!(picks.iter().filter(|&&s| s == 1).count(), 3);
        assert_eq!(picks.iter().filter(|&&s| s == 3).count(), 3);
    }

    #[test]
    fn recovery_restores_rotation() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::RoundRobin);
        b.mark_failed(1);
        assert_eq!(b.pick(), Some(2));
        b.mark_recovered(1);
        let picks: Vec<SiteId> = (0..4).map(|_| b.pick().unwrap()).collect();
        assert!(picks.contains(&1) && picks.contains(&2));
    }

    #[test]
    fn all_down_returns_none() {
        let mut b = Balancer::new(vec![1], BalancerPolicy::RoundRobin);
        b.mark_failed(1);
        assert_eq!(b.pick(), None);
        assert_eq!(b.live_count(), 0);
    }

    #[test]
    fn least_pending_prefers_idle_site() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
        b.report_pending(1, 100);
        b.report_pending(2, 0);
        assert_eq!(b.pick(), Some(2));
        // The optimistic increment spreads a burst rather than dogpiling.
        b.report_pending(1, 0);
        b.report_pending(2, 0);
        let picks: Vec<SiteId> = (0..4).map(|_| b.pick().unwrap()).collect();
        assert_eq!(picks.iter().filter(|&&s| s == 1).count(), 2);
        assert_eq!(picks.iter().filter(|&&s| s == 2).count(), 2);
    }

    #[test]
    fn least_pending_skips_failed() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
        b.report_pending(1, 0);
        b.report_pending(2, 50);
        b.mark_failed(1);
        assert_eq!(b.pick(), Some(2));
    }
}
