//! Client-request load balancing across mirror sites.
//!
//! "Clients' requests for IS state may be satisfied not just by one, but by
//! any one of the mirror machines. The resulting parallelization of request
//! processing for clients coupled with simple load balancing strategies
//! enables us to offer timely services" (§1). The paper cites prior work
//! showing simple strategies suffice [1, 10]; we provide round-robin and
//! least-pending, plus the failover behaviour the paper's §6 lists as
//! future work: a site marked failed stops receiving requests and its share
//! redistributes over the survivors.
//!
//! Least-pending routing reads each site's **live pending-request gauge**
//! (the same `Arc<AtomicU64>` the site's gateway maintains) directly — there
//! is no report/push plumbing between the gateway and the balancer, so the
//! reading is never stale by more than one atomic load. A front-end tracks
//! elastic membership by calling [`Balancer::sync`] with the current
//! epoch-stamped [`MembershipView`]: newly admitted mirrors join the
//! rotation, suspects are skipped, retired sites are dropped for good.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mirror_core::aux_unit::SiteId;
use mirror_core::membership::{MembershipView, SiteState};
use mirror_core::{FlightId, GroupId, PartitionMap};

/// Balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Rotate through live sites.
    RoundRobin,
    /// Pick the live site with the smallest pending-gauge reading.
    LeastPending,
}

#[derive(Debug, Clone)]
struct SiteSlot {
    site: SiteId,
    alive: bool,
    /// Shared pending-request gauge owned by the site's gateway. `None`
    /// until attached; a gauge-less site balances as if idle.
    gauge: Option<Arc<AtomicU64>>,
    dispatched: u64,
}

impl SiteSlot {
    fn idle(site: SiteId) -> Self {
        SiteSlot { site, alive: true, gauge: None, dispatched: 0 }
    }

    fn pending(&self) -> u64 {
        self.gauge.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A request load balancer over a set of sites.
#[derive(Debug, Clone)]
pub struct Balancer {
    slots: Vec<SiteSlot>,
    next: usize,
    policy: BalancerPolicy,
    epoch: u64,
}

impl Balancer {
    /// A balancer over `sites` with the given policy.
    pub fn new(sites: Vec<SiteId>, policy: BalancerPolicy) -> Self {
        assert!(!sites.is_empty(), "balancer needs at least one site");
        Balancer {
            slots: sites.into_iter().map(SiteSlot::idle).collect(),
            next: 0,
            policy,
            epoch: 0,
        }
    }

    /// Sites under management, in rotation order.
    pub fn sites(&self) -> Vec<SiteId> {
        self.slots.iter().map(|s| s.site).collect()
    }

    /// Requests dispatched per site, index-aligned with [`Balancer::sites`].
    pub fn dispatched(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.dispatched).collect()
    }

    /// Requests dispatched to one site (0 for unknown sites).
    pub fn dispatched_to(&self, site: SiteId) -> u64 {
        self.slot(site).map_or(0, |i| self.slots[i].dispatched)
    }

    /// The membership epoch of the last [`Balancer::sync`] (0 before any).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live sites.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.alive).count()
    }

    fn slot(&self, site: SiteId) -> Option<usize> {
        self.slots.iter().position(|s| s.site == site)
    }

    /// Mark a site failed: it stops receiving requests.
    pub fn mark_failed(&mut self, site: SiteId) {
        if let Some(i) = self.slot(site) {
            self.slots[i].alive = false;
        }
    }

    /// Mark a site recovered.
    pub fn mark_recovered(&mut self, site: SiteId) {
        if let Some(i) = self.slot(site) {
            self.slots[i].alive = true;
        }
    }

    /// Attach a site's live pending-request gauge (the `Arc<AtomicU64>`
    /// its gateway maintains). [`BalancerPolicy::LeastPending`] reads it
    /// on every pick; no reporting calls are needed.
    pub fn attach_gauge(&mut self, site: SiteId, gauge: Arc<AtomicU64>) {
        if let Some(i) = self.slot(site) {
            self.slots[i].gauge = Some(gauge);
        }
    }

    /// Adopt an epoch-stamped membership view: admit newly live mirrors
    /// into the rotation (gauge-less until [`Balancer::attach_gauge`]),
    /// skip suspects, and drop retired sites permanently. Stale views
    /// (epoch at or below the last synced one) are ignored, so out-of-order
    /// deliveries cannot resurrect a retired site.
    ///
    /// Returns `true` if the view was adopted.
    pub fn sync(&mut self, view: &MembershipView) -> bool {
        if self.epoch != 0 && view.epoch() <= self.epoch {
            return false;
        }
        for &(site, state) in view.entries() {
            match (self.slot(site), state) {
                (Some(i), SiteState::Live) => self.slots[i].alive = true,
                (Some(i), SiteState::Suspect) => self.slots[i].alive = false,
                (Some(i), SiteState::Retired) => {
                    self.slots.remove(i);
                }
                (None, SiteState::Live) => self.slots.push(SiteSlot::idle(site)),
                (None, _) => {}
            }
        }
        if self.next >= self.slots.len() {
            self.next = 0;
        }
        self.epoch = view.epoch();
        true
    }

    /// Pick the site for the next request; `None` if every site is down.
    ///
    /// [`BalancerPolicy::LeastPending`] reads each live gauge at pick time
    /// and breaks ties round-robin, so a burst of picks between gauge
    /// movements spreads over equally loaded sites instead of dogpiling.
    pub fn pick(&mut self) -> Option<SiteId> {
        if self.live_count() == 0 || self.slots.is_empty() {
            return None;
        }
        let n = self.slots.len();
        let idx = match self.policy {
            BalancerPolicy::RoundRobin => {
                let mut idx = self.next % n;
                while !self.slots[idx].alive {
                    idx = (idx + 1) % n;
                }
                idx
            }
            BalancerPolicy::LeastPending => {
                let mut best: Option<(usize, u64)> = None;
                // Scan in rotation order from `next` so the strict `<`
                // makes ties rotate.
                for k in 0..n {
                    let i = (self.next + k) % n;
                    if !self.slots[i].alive {
                        continue;
                    }
                    let p = self.slots[i].pending();
                    match best {
                        None => best = Some((i, p)),
                        Some((_, bp)) if p < bp => best = Some((i, p)),
                        _ => {}
                    }
                }
                best.expect("live_count > 0").0
            }
        };
        self.next = idx + 1;
        self.slots[idx].dispatched += 1;
        Some(self.slots[idx].site)
    }
}

/// Partition-aware routing front-end for a content-partitioned cluster:
/// one [`Balancer`] per mirror group plus a cached [`PartitionMap`].
///
/// A keyed request first resolves its flight to the owning group, then
/// balances across that group's sites. The cached map can lag the cluster
/// (it syncs off commits, or not at all) — that's fine, because a stale
/// route is not silent: the gateway answers
/// `RequestError::WrongPartition { owner_group }`, and
/// [`on_wrong_partition`](GroupRouter::on_wrong_partition) both re-routes
/// the request to the named owner *and* remembers the correction, so one
/// misroute per moved slot is the steady-state cost of lag. Learned
/// corrections are an overlay on the cached map, discarded whenever a
/// genuinely newer map syncs in.
#[derive(Debug, Clone)]
pub struct GroupRouter {
    map: PartitionMap,
    /// Slot-level corrections learned from `WrongPartition` refusals;
    /// consulted before the cached map, cleared on a newer map sync.
    learned: HashMap<usize, GroupId>,
    groups: Vec<Balancer>,
    reroutes: u64,
}

impl GroupRouter {
    /// A router over `groups` balancers (index = group id) under `map`.
    pub fn new(map: PartitionMap, groups: Vec<Balancer>) -> Self {
        assert!(!groups.is_empty(), "router needs at least one group");
        assert!(
            map.groups() <= groups.len(),
            "map references group {} but only {} balancers given",
            map.groups() - 1,
            groups.len()
        );
        GroupRouter { map, learned: HashMap::new(), groups, reroutes: 0 }
    }

    /// The cached partition map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Adopt a newer partition map (epoch-fenced like every other map
    /// consumer); learned corrections are discarded — the new map
    /// supersedes them. Returns whether the map was adopted.
    pub fn sync_map(&mut self, map: PartitionMap) -> bool {
        if map.epoch() <= self.map.epoch() {
            return false;
        }
        assert!(
            map.groups() <= self.groups.len(),
            "synced map references more groups than balancers"
        );
        self.map = map;
        self.learned.clear();
        true
    }

    /// The group this router would currently send `flight` to (learned
    /// corrections first, then the cached map).
    pub fn group_for(&self, flight: FlightId) -> GroupId {
        let slot = PartitionMap::slot_of(flight);
        self.learned.get(&slot).copied().unwrap_or_else(|| self.map.group_of(flight))
    }

    /// Misroutes corrected via
    /// [`on_wrong_partition`](GroupRouter::on_wrong_partition) so far.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// The balancer of group `g` (for gauge attachment, membership sync,
    /// failure marking).
    pub fn balancer_mut(&mut self, g: GroupId) -> &mut Balancer {
        &mut self.groups[g as usize]
    }

    /// Route a keyed request: the owning group's balancer picks the site.
    /// `None` when every site of the owning group is down.
    pub fn route(&mut self, flight: FlightId) -> Option<(GroupId, SiteId)> {
        let g = self.group_for(flight);
        let site = self.groups[g as usize].pick()?;
        Some((g, site))
    }

    /// React to a `WrongPartition { owner_group }` refusal: learn the
    /// correction for the flight's whole slot (every flight of the slot
    /// moved with it) and immediately re-route to the named owner.
    pub fn on_wrong_partition(
        &mut self,
        flight: FlightId,
        owner_group: GroupId,
    ) -> Option<(GroupId, SiteId)> {
        if (owner_group as usize) >= self.groups.len() {
            return None; // refusal names a group this router doesn't know
        }
        self.learned.insert(PartitionMap::slot_of(flight), owner_group);
        self.reroutes += 1;
        let site = self.groups[owner_group as usize].pick()?;
        Some((owner_group, site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::membership::MembershipRegistry;

    #[test]
    fn round_robin_cycles_evenly() {
        let mut b = Balancer::new(vec![1, 2, 3], BalancerPolicy::RoundRobin);
        let picks: Vec<SiteId> = (0..9).map(|_| b.pick().unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(b.dispatched(), vec![3, 3, 3]);
    }

    #[test]
    fn failed_site_is_skipped_and_share_redistributes() {
        let mut b = Balancer::new(vec![1, 2, 3], BalancerPolicy::RoundRobin);
        b.mark_failed(2);
        let picks: Vec<SiteId> = (0..6).map(|_| b.pick().unwrap()).collect();
        assert!(picks.iter().all(|&s| s != 2));
        assert_eq!(picks.iter().filter(|&&s| s == 1).count(), 3);
        assert_eq!(picks.iter().filter(|&&s| s == 3).count(), 3);
    }

    #[test]
    fn recovery_restores_rotation() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::RoundRobin);
        b.mark_failed(1);
        assert_eq!(b.pick(), Some(2));
        b.mark_recovered(1);
        let picks: Vec<SiteId> = (0..4).map(|_| b.pick().unwrap()).collect();
        assert!(picks.contains(&1) && picks.contains(&2));
    }

    #[test]
    fn all_down_returns_none() {
        let mut b = Balancer::new(vec![1], BalancerPolicy::RoundRobin);
        b.mark_failed(1);
        assert_eq!(b.pick(), None);
        assert_eq!(b.live_count(), 0);
    }

    #[test]
    fn least_pending_reads_live_gauges() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
        let g1 = Arc::new(AtomicU64::new(100));
        let g2 = Arc::new(AtomicU64::new(0));
        b.attach_gauge(1, Arc::clone(&g1));
        b.attach_gauge(2, Arc::clone(&g2));
        assert_eq!(b.pick(), Some(2));
        // Gauges drained and static: tied readings rotate, so a burst
        // spreads instead of dogpiling one site between gauge movements.
        g1.store(0, Ordering::Relaxed);
        let picks: Vec<SiteId> = (0..4).map(|_| b.pick().unwrap()).collect();
        assert_eq!(picks.iter().filter(|&&s| s == 1).count(), 2);
        assert_eq!(picks.iter().filter(|&&s| s == 2).count(), 2);
        // Readings move: the lighter site wins outright.
        g2.store(50, Ordering::Relaxed);
        g1.store(1, Ordering::Relaxed);
        assert_eq!(b.pick(), Some(1));
    }

    #[test]
    fn least_pending_skips_failed() {
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::LeastPending);
        let g2 = Arc::new(AtomicU64::new(50));
        b.attach_gauge(2, g2);
        b.mark_failed(1);
        assert_eq!(b.pick(), Some(2));
    }

    #[test]
    fn group_router_routes_by_partition() {
        let mut r = GroupRouter::new(
            PartitionMap::uniform(2),
            vec![
                Balancer::new(vec![1, 2], BalancerPolicy::RoundRobin),
                Balancer::new(vec![3, 4], BalancerPolicy::RoundRobin),
            ],
        );
        let f0 = (0..).find(|&f| r.map().group_of(f) == 0).unwrap();
        let f1 = (0..).find(|&f| r.map().group_of(f) == 1).unwrap();
        let (g0, s0) = r.route(f0).unwrap();
        let (g1, s1) = r.route(f1).unwrap();
        assert_eq!((g0, g1), (0, 1));
        assert!([1, 2].contains(&s0) && [3, 4].contains(&s1));
        // Repeated routes of the same flight rotate within the group.
        let (_, s0b) = r.route(f0).unwrap();
        assert_ne!(s0, s0b);
    }

    #[test]
    fn group_router_learns_from_wrong_partition() {
        let mut r = GroupRouter::new(
            PartitionMap::uniform(2),
            vec![
                Balancer::new(vec![1], BalancerPolicy::RoundRobin),
                Balancer::new(vec![3], BalancerPolicy::RoundRobin),
            ],
        );
        let f = (0..).find(|&f| r.map().group_of(f) == 0).unwrap();
        assert_eq!(r.route(f), Some((0, 1)));
        // The gateway refused: the slot moved to group 1. The router
        // re-routes immediately and remembers for the whole slot.
        assert_eq!(r.on_wrong_partition(f, 1), Some((1, 3)));
        assert_eq!(r.reroutes(), 1);
        assert_eq!(r.route(f), Some((1, 3)));
        // A refusal naming an unknown group is not followed blindly.
        assert_eq!(r.on_wrong_partition(f, 7), None);
        // A genuinely newer map supersedes learned corrections.
        let mut newer = r.map().clone();
        let slot = PartitionMap::slot_of(f);
        newer.assign(slot, 0);
        newer.assign(slot, 0); // two bumps: past uniform + the learned era
        assert!(r.sync_map(newer.clone()));
        assert_eq!(r.route(f), Some((0, 1)));
        assert!(!r.sync_map(newer), "stale re-sync must be fenced");
    }

    #[test]
    fn sync_tracks_membership_epochs() {
        let reg = MembershipRegistry::new(2);
        let mut b = Balancer::new(vec![1, 2], BalancerPolicy::RoundRobin);

        // Scale-out: site 3 admitted at epoch 1 joins the rotation.
        let site = reg.next_site_id();
        reg.admit(site).unwrap();
        assert!(b.sync(&reg.view()));
        assert_eq!(b.epoch(), 1);
        assert_eq!(b.sites(), vec![1, 2, 3]);
        let picks: Vec<SiteId> = (0..3).map(|_| b.pick().unwrap()).collect();
        assert!(picks.contains(&3));

        // Suspect drops out of rotation, retire removes permanently.
        reg.suspect(2).unwrap();
        assert!(b.sync(&reg.view()));
        assert_eq!(b.live_count(), 2);
        reg.retire(3).unwrap();
        assert!(b.sync(&reg.view()));
        assert_eq!(b.sites(), vec![1, 2]);

        // A stale view is rejected: the retired site stays gone.
        assert!(!b.sync(&MembershipView::initial(3)));
        assert_eq!(b.sites(), vec![1, 2]);
    }
}
