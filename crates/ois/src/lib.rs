//! # mirror-ois — the assembled Operational Information System server
//!
//! This crate wires the pieces into the paper's system (Figure 2): a
//! central site receiving the FAA/Delta streams, mirror sites fed over
//! data/control channels, Event Derivation Engines at every main unit, and
//! client requests balanced across sites. It provides:
//!
//! * [`payload`] — the message vocabulary flowing between simulated nodes;
//! * [`site`] — [`site::SiteProcess`], the per-node glue that runs the
//!   sans-IO `AuxUnit` + `Ede` under the discrete-event simulator and
//!   charges the calibrated cost model for every action;
//! * [`balancer`] — client-request load-balancing policies (round-robin /
//!   least-pending) plus mirror-failure failover;
//! * [`experiment`] — the harness behind every figure: build a cluster,
//!   replay a workload and a request schedule, collect total execution
//!   time, update-delay statistics and series, per-site counters, and
//!   cross-mirror consistency hashes.

#![warn(missing_docs)]

pub mod balancer;
pub mod experiment;
pub mod payload;
pub mod site;

pub use balancer::{Balancer, BalancerPolicy, GroupRouter};
pub use experiment::{ExperimentConfig, ExperimentResult, Ingest, RequestTargets};
pub use payload::Payload;
pub use site::{ClientSink, JournalCost, SiteProcess, SnapshotCacheCost};
