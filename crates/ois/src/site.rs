//! Site processes: the glue between the sans-IO middleware and the
//! simulated cluster.
//!
//! A [`SiteProcess`] is one cluster node running a main unit (EDE) and an
//! auxiliary unit (mirroring). It translates simulator deliveries into
//! [`AuxInput`]s, executes the resulting [`AuxAction`]s as simulator sends,
//! and charges every operation to the calibrated [`CostModel`]. A
//! [`ClientSink`] node stands in for the population of operational-data
//! clients and recovering thin clients, recording delivery delays and
//! request latencies.

use std::collections::VecDeque;
use std::sync::Arc;

use mirror_core::adapt::MonitorReport;
use mirror_core::aux_unit::{AuxAction, AuxInput, AuxUnit, SiteId, CENTRAL_SITE};
use mirror_core::checkpoint::MainUnitResponder;
use mirror_core::event::Event;
use mirror_core::metrics::{AuxCounters, DelayStats, TimeSeries};
use mirror_core::ControlMsg;
use mirror_ede::Ede;
use mirror_sim::engine::{NodeId, SimProcess, Step};
use mirror_sim::{CostModel, SimTime};

use crate::payload::Payload;

/// Per-flight record size the simulation's snapshot cost model is
/// calibrated at. Deliberately decoupled from the runtime encoder's
/// [`SNAPSHOT_FLIGHT_WIRE_SIZE`](mirror_ede::SNAPSHOT_FLIGHT_WIRE_SIZE):
/// the figures' service-rate parameters were fit against this record
/// size (the paper's OIS record format is not our wire format), so
/// retuning the wire encoder must not silently re-shape the reproduced
/// figures. Exact live-path accounting uses `FlightView::wire_size`.
const CALIBRATED_SNAPSHOT_ENTRY_BYTES: usize = 69;

/// Metrics collected at one site during a run.
#[derive(Debug, Default)]
pub struct SiteMetrics {
    /// Update delay (ingress → EDE emission) — recorded at the central
    /// site; the paper's Figures 8 and 9 metric.
    pub update_delay: DelayStats,
    /// Raw update-delay samples over time (for the Figure 9 series).
    pub delay_series: TimeSeries,
    /// Client requests served here.
    pub requests_served: u64,
    /// Requests answered from the simulated snapshot cache.
    pub snapshot_cache_hits: u64,
    /// Events processed by this site's EDE.
    pub events_processed: u64,
    /// Adaptation directives applied.
    pub adaptations: u64,
    /// Largest pending-request backlog observed.
    pub max_pending_requests: usize,
    /// Times (µs) at which an adaptation directive took effect here.
    pub adaptation_times: Vec<SimTime>,
    /// Mirror sites the coordinator declared failed during the run.
    pub mirrors_failed: Vec<mirror_core::aux_unit::SiteId>,
}

/// Simulated cost of durable journaling at the central sending task: the
/// `mirror-store` write-ahead log appends every mirrored event (an
/// OS-buffered write of the already-encoded frame) and pays a
/// stable-storage flush every `fsync_every` appends plus one at every
/// checkpoint commit. The knob lets the §4-style experiments price the
/// durability/throughput trade-off without doing real IO.
#[derive(Debug, Clone, Copy)]
pub struct JournalCost {
    /// Fixed CPU cost of one buffered append (µs): write syscall, frame
    /// header, CRC.
    pub write_us: u64,
    /// Marginal append cost per KiB of payload (µs).
    pub per_kib_us: u64,
    /// Pay an fsync every N appends (0 = only at commits — the
    /// `FsyncPolicy::OnCommit` discipline).
    pub fsync_every: u32,
    /// Stable-storage flush cost (µs).
    pub fsync_us: u64,
}

impl Default for JournalCost {
    fn default() -> Self {
        // SSD-calibrated: ~3µs buffered append + ~2µs/KiB copy, ~120µs
        // flush amortized over 64 appends (the EveryN default).
        JournalCost { write_us: 3, per_kib_us: 2, fsync_every: 64, fsync_us: 120 }
    }
}

impl JournalCost {
    fn append_cost(&self, bytes: usize) -> SimTime {
        self.write_us + (bytes as u64 * self.per_kib_us) / 1024
    }
}

/// Simulated cost of the runtime's epoch-keyed snapshot cache at the
/// serving task: a request arriving while the EDE has advanced at most
/// `max_stale_events` state changes past the last full capture is answered
/// at `hit_us` (an `Arc` clone of the already-captured, already-encoded
/// snapshot) instead of the full per-request capture+encode
/// [`CostModel::request_cost`]. Lets the §4-style experiments price the
/// request-storm serving path the way [`JournalCost`] prices durability.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCacheCost {
    /// Cost (µs) of answering from the cached snapshot.
    pub hit_us: u64,
    /// Serve from cache while the EDE is at most this many state changes
    /// past the cached capture (the bounded-staleness window — clients
    /// replay the update stream from the snapshot frontier, so a slightly
    /// stale base converges after replay).
    pub max_stale_events: u64,
}

impl Default for SnapshotCacheCost {
    fn default() -> Self {
        // ~5µs: reference-count bumps plus queueing a pre-encoded buffer,
        // matching the runtime cache's default 64-event staleness bound.
        SnapshotCacheCost { hit_us: 5, max_stale_events: 64 }
    }
}

/// One cluster node: main unit + auxiliary unit + request servicing.
pub struct SiteProcess {
    site: SiteId,
    node: NodeId,
    central_node: NodeId,
    mirror_nodes: Vec<NodeId>,
    sink_node: NodeId,
    aux: AuxUnit,
    /// `false` selects the pure no-mirroring baseline path (central only):
    /// events go straight from the receiving task to the EDE.
    mirroring: bool,
    ede: Ede,
    main: MainUnitResponder,
    cost: CostModel,
    req_buf: VecDeque<mirror_workload::requests::Request>,
    serving: bool,
    /// Running mean wire size of events seen here; flight records in
    /// snapshots are assumed to be this large.
    avg_event_bytes: f64,
    events_seen: u64,
    /// Durability cost knob (central only; `None` = no journaling).
    journal: Option<JournalCost>,
    /// Appends charged so far (drives the every-N fsync cadence).
    journal_appends: u64,
    /// Snapshot-cache cost knob (`None` = every request pays the full
    /// capture+encode cost — the pre-cache serving path).
    snap_cache: Option<SnapshotCacheCost>,
    /// EDE epoch the cached capture reflects (`None` = cache cold).
    cached_epoch: Option<u64>,
    /// Metrics, readable by the harness through `Shared`.
    pub metrics: SiteMetrics,
}

impl SiteProcess {
    /// Build the central site's process.
    #[allow(clippy::too_many_arguments)]
    pub fn central(
        aux: AuxUnit,
        mirroring: bool,
        node: NodeId,
        mirror_nodes: Vec<NodeId>,
        sink_node: NodeId,
        cost: CostModel,
    ) -> Self {
        assert!(aux.is_central());
        SiteProcess {
            site: CENTRAL_SITE,
            node,
            central_node: node,
            mirror_nodes,
            sink_node,
            aux,
            mirroring,
            ede: Ede::new(),
            main: MainUnitResponder::new(CENTRAL_SITE),
            cost,
            req_buf: VecDeque::new(),
            serving: false,
            avg_event_bytes: 0.0,
            events_seen: 0,
            journal: None,
            journal_appends: 0,
            snap_cache: None,
            cached_epoch: None,
            metrics: SiteMetrics::default(),
        }
    }

    /// Charge the simulated durability cost of journaling every mirrored
    /// event (central sending task only; see [`JournalCost`]).
    pub fn with_journal(mut self, journal: JournalCost) -> Self {
        assert!(self.aux.is_central(), "only the central site journals");
        self.journal = Some(journal);
        self
    }

    /// Serve requests through a simulated epoch-keyed snapshot cache (see
    /// [`SnapshotCacheCost`]); any site can cache, mirroring the runtime.
    pub fn with_snapshot_cache(mut self, cache: SnapshotCacheCost) -> Self {
        self.snap_cache = Some(cache);
        self
    }

    /// Build a mirror site's process.
    pub fn mirror(
        aux: AuxUnit,
        node: NodeId,
        central_node: NodeId,
        sink_node: NodeId,
        cost: CostModel,
    ) -> Self {
        assert!(!aux.is_central());
        let site = aux.site();
        SiteProcess {
            site,
            node,
            central_node,
            mirror_nodes: Vec::new(),
            sink_node,
            aux,
            mirroring: true,
            ede: Ede::new(),
            main: MainUnitResponder::new(site),
            cost,
            req_buf: VecDeque::new(),
            serving: false,
            avg_event_bytes: 0.0,
            events_seen: 0,
            journal: None,
            journal_appends: 0,
            snap_cache: None,
            cached_epoch: None,
            metrics: SiteMetrics::default(),
        }
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Digest of the EDE's application state (cross-mirror consistency).
    pub fn state_hash(&self) -> u64 {
        self.ede.state_hash()
    }

    /// Auxiliary-unit counters.
    pub fn aux_counters(&self) -> AuxCounters {
        self.aux.counters()
    }

    /// The EDE (read access for harness assertions).
    pub fn ede(&self) -> &Ede {
        &self.ede
    }

    /// Pending (buffered, unserved) client requests.
    pub fn pending_requests(&self) -> usize {
        self.req_buf.len()
    }

    /// Size of one flight record in a snapshot, given the traffic seen:
    /// the fixed record plus the fraction of event payload that persists
    /// into state.
    fn snapshot_entry_bytes(&self) -> usize {
        CALIBRATED_SNAPSHOT_ENTRY_BYTES
            + (self.cost.state_record_fraction * self.avg_event_bytes) as usize
    }

    /// Run the EDE over one event; record update delays and emit client
    /// updates (central only).
    fn run_ede(&mut self, ev: &Event, now: SimTime, cpu: &mut SimTime, step: &mut Step<Payload>) {
        self.events_seen += 1;
        self.avg_event_bytes +=
            (ev.wire_size() as f64 - self.avg_event_bytes) / self.events_seen as f64;
        *cpu += self.cost.ede_cost(ev.wire_size());
        self.main.record_processed(&ev.stamp);
        self.metrics.events_processed += 1;
        let out = self.ede.process(ev);
        if self.site == CENTRAL_SITE {
            for u in out.client_updates {
                let done = now + *cpu;
                let delay = done.saturating_sub(u.ingress_us);
                self.metrics.update_delay.record(delay);
                self.metrics.delay_series.push(done, delay as f64);
                step.sends.push(mirror_sim::engine::Send {
                    to: self.sink_node,
                    bytes: u.wire_size(),
                    payload: Payload::ClientUpdate {
                        bytes: u.wire_size(),
                        ingress_us: u.ingress_us,
                    },
                });
            }
        }
    }

    /// Feed one input through the auxiliary unit, executing every resulting
    /// action (including the local main-unit control loop) and charging
    /// costs.
    fn drive_aux(
        &mut self,
        input: AuxInput,
        now: SimTime,
        cpu: &mut SimTime,
        step: &mut Step<Payload>,
    ) {
        let mut work = VecDeque::new();
        work.push_back(input);
        while let Some(inp) = work.pop_front() {
            let backup_before = self.aux.backup_len();
            let actions = self.aux.handle(inp);
            let pruned = backup_before.saturating_sub(self.aux.backup_len());
            *cpu += self.cost.prune_cost(pruned);

            for action in actions {
                match action {
                    AuxAction::Mirror { event: ev, .. } => {
                        let bytes = ev.wire_size();
                        *cpu += self.cost.send_cost(bytes, self.mirror_nodes.len());
                        *cpu += self.cost.queue_mgmt_cost(self.aux.backup_len());
                        if let mirror_core::event::EventBody::Coalesced { count, .. } = &ev.body {
                            *cpu += self.cost.fold_cost(*count);
                        }
                        if let Some(j) = &self.journal {
                            // WAL append shares the encoding the send path
                            // already produced: one buffered write, plus the
                            // periodic stable-storage flush.
                            *cpu += j.append_cost(bytes);
                            self.journal_appends += 1;
                            if j.fsync_every > 0
                                && self.journal_appends.is_multiple_of(u64::from(j.fsync_every))
                            {
                                *cpu += j.fsync_us;
                            }
                        }
                        for &mn in &self.mirror_nodes {
                            step.sends.push(mirror_sim::engine::Send {
                                to: mn,
                                bytes,
                                // Arc clone: all mirror copies (and the
                                // backup-queue copy) share one allocation.
                                payload: Payload::MirrorData(Arc::clone(&ev)),
                            });
                        }
                    }
                    AuxAction::ForwardToMain(ev) => {
                        self.run_ede(&ev, now, cpu, step);
                    }
                    AuxAction::ControlToMirrors(m) => {
                        *cpu += self.cost.ctrl_msg_us;
                        if matches!(m, ControlMsg::Chkpt { .. }) {
                            // Coordinator pipeline stall per round.
                            *cpu += self.cost.chkpt_round_us;
                        }
                        if let (Some(j), ControlMsg::Commit { .. }) = (&self.journal, &m) {
                            // Commit syncs the log and advances the durable
                            // truncation watermark.
                            *cpu += j.fsync_us;
                        }
                        let bytes = m.wire_size();
                        for &mn in &self.mirror_nodes {
                            step.sends.push(mirror_sim::engine::Send {
                                to: mn,
                                bytes,
                                payload: Payload::Control(m.clone()),
                            });
                        }
                    }
                    AuxAction::ControlToCentral(m) => {
                        *cpu += self.cost.ctrl_msg_us;
                        step.sends.push(mirror_sim::engine::Send {
                            to: self.central_node,
                            bytes: m.wire_size(),
                            payload: Payload::Control(m),
                        });
                    }
                    AuxAction::ControlToMain(m) => {
                        *cpu += self.cost.ctrl_msg_us;
                        match &m {
                            ControlMsg::Chkpt { .. } => {
                                if self.site != CENTRAL_SITE {
                                    // Participant pipeline stall per round.
                                    *cpu += self.cost.chkpt_participant_us;
                                }
                                let report = MonitorReport {
                                    ready_len: 0,
                                    backup_len: 0,
                                    pending_requests: self.req_buf.len() as u64,
                                };
                                if let Some(rep) = self.main.on_chkpt(&m, report) {
                                    work.push_back(AuxInput::Control(rep));
                                }
                            }
                            ControlMsg::Commit { .. } => self.main.on_commit(&m),
                            ControlMsg::ChkptRep { .. } => {}
                        }
                    }
                    AuxAction::Reconfigured(_) => {
                        *cpu += self.cost.ctrl_msg_us;
                        self.metrics.adaptations += 1;
                        self.metrics.adaptation_times.push(now + *cpu);
                    }
                    AuxAction::MirrorFailed(site) => {
                        // Stop mirroring to the dead node: node id == site id
                        // in the simulated cluster layout.
                        self.mirror_nodes.retain(|&n| n != site as NodeId);
                        self.metrics.mirrors_failed.push(site);
                    }
                    AuxAction::ScaleDirective(_) => {
                        // Elastic capacity is a runtime-cluster concern; the
                        // simulated topology is fixed, so scale directives
                        // cost a control message and are otherwise inert.
                        *cpu += self.cost.ctrl_msg_us;
                    }
                }
            }
        }
    }
}

impl SimProcess<Payload> for SiteProcess {
    fn handle(&mut self, now: SimTime, _from: NodeId, payload: Payload) -> Step<Payload> {
        let mut step = Step::none();
        let mut cpu: SimTime = 0;
        match payload {
            Payload::Source(e) => {
                debug_assert_eq!(self.site, CENTRAL_SITE, "sources feed the central site");
                cpu += self.cost.recv_cost(e.wire_size(), self.aux.rules().rules().len());
                if self.mirroring {
                    self.drive_aux(AuxInput::Data(e.into()), now, &mut cpu, &mut step);
                } else {
                    // No-mirroring baseline: straight to the EDE.
                    self.run_ede(&e, now, &mut cpu, &mut step);
                }
            }
            Payload::MirrorData(e) => {
                cpu += self.cost.recv_cost(e.wire_size(), 0);
                self.drive_aux(AuxInput::Data(e), now, &mut cpu, &mut step);
            }
            Payload::Control(m) => {
                cpu += self.cost.ctrl_msg_us;
                self.drive_aux(AuxInput::Control(m), now, &mut cpu, &mut step);
            }
            Payload::Request(r) => {
                // Application-level pending-request buffer (a monitored
                // variable of the adaptation mechanism).
                self.req_buf.push_back(r);
                self.metrics.max_pending_requests =
                    self.metrics.max_pending_requests.max(self.req_buf.len());
                self.aux.set_pending_requests(self.req_buf.len() as u64);
                cpu += 5;
                if !self.serving {
                    self.serving = true;
                    step.sends.push(mirror_sim::engine::Send {
                        to: self.node,
                        bytes: 0,
                        payload: Payload::ServeNext,
                    });
                }
            }
            Payload::ServeNext => {
                if let Some(r) = self.req_buf.pop_front() {
                    let flights = self.ede.state().flight_count();
                    let bytes = 16 + flights * self.snapshot_entry_bytes();
                    let epoch = self.ede.epoch();
                    let hit = match (&self.snap_cache, self.cached_epoch) {
                        (Some(c), Some(cached)) => {
                            epoch >= cached && epoch - cached <= c.max_stale_events
                        }
                        _ => false,
                    };
                    if let (Some(c), true) = (&self.snap_cache, hit) {
                        cpu += c.hit_us;
                        self.metrics.snapshot_cache_hits += 1;
                    } else {
                        cpu += self.cost.request_cost(flights, bytes);
                        if self.snap_cache.is_some() {
                            self.cached_epoch = Some(epoch);
                        }
                    }
                    self.metrics.requests_served += 1;
                    step.sends.push(mirror_sim::engine::Send {
                        to: self.sink_node,
                        bytes,
                        payload: Payload::Snapshot { request_id: r.id, issued_us: r.at_us, bytes },
                    });
                }
                self.aux.set_pending_requests(self.req_buf.len() as u64);
                if self.req_buf.is_empty() {
                    self.serving = false;
                } else {
                    step.sends.push(mirror_sim::engine::Send {
                        to: self.node,
                        bytes: 0,
                        payload: Payload::ServeNext,
                    });
                }
            }
            Payload::Flush => {
                self.drive_aux(AuxInput::Flush, now, &mut cpu, &mut step);
            }
            Payload::Snapshot { .. } | Payload::ClientUpdate { .. } => {
                // Client-side payloads; sites never receive these.
            }
        }
        step.cpu_us = cpu;
        step
    }
}

/// The aggregate client population: absorbs regular updates and snapshot
/// responses, recording delivery metrics.
#[derive(Debug, Default)]
pub struct ClientSink {
    /// Regular updates delivered.
    pub updates: u64,
    /// Bytes of regular updates delivered.
    pub update_bytes: u64,
    /// Delivery delay of regular updates (ingress → client arrival).
    pub delivery_delay: DelayStats,
    /// Snapshot responses delivered.
    pub snapshots: u64,
    /// Bytes of snapshots delivered.
    pub snapshot_bytes: u64,
    /// Client-observed initial-state request latency.
    pub request_latency: DelayStats,
}

impl ClientSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SimProcess<Payload> for ClientSink {
    fn handle(&mut self, now: SimTime, _from: NodeId, payload: Payload) -> Step<Payload> {
        match payload {
            Payload::ClientUpdate { bytes, ingress_us } => {
                self.updates += 1;
                self.update_bytes += bytes as u64;
                self.delivery_delay.record(now.saturating_sub(ingress_us));
            }
            Payload::Snapshot { issued_us, bytes, .. } => {
                self.snapshots += 1;
                self.snapshot_bytes += bytes as u64;
                self.request_latency.record(now.saturating_sub(issued_us));
            }
            _ => return Step::none(),
        }
        // A client spends a moment absorbing the delivery; this also makes
        // the delivery instant count toward the run's completion time.
        Step::cpu(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirror_core::api::MirrorConfig;
    use mirror_core::event::PositionFix;
    use mirror_sim::engine::Sim;
    use mirror_sim::LinkParams;
    use mirror_workload::requests::Request;

    fn fix() -> PositionFix {
        PositionFix { lat: 0.0, lon: 0.0, alt_ft: 30000.0, speed_kts: 400.0, heading_deg: 0.0 }
    }

    type SharedProc<T> = std::sync::Arc<std::sync::Mutex<T>>;

    /// Minimal cluster: central(0) + mirror(1) + sink(2).
    #[allow(clippy::type_complexity)]
    fn build_cluster(
    ) -> (Sim<Payload>, SharedProc<SiteProcess>, SharedProc<SiteProcess>, SharedProc<ClientSink>)
    {
        let cost = CostModel::calibrated();
        let central_aux = MirrorConfig::default().build_central(vec![1]);
        let mirror_aux = MirrorConfig::default().build_mirror(1);
        let central = SiteProcess::central(central_aux, true, 0, vec![1], 2, cost);
        let mirror = SiteProcess::mirror(mirror_aux, 1, 0, 2, cost);
        let (c_shared, c) = mirror_sim::engine::Shared::new(central);
        let (m_shared, m) = mirror_sim::engine::Shared::new(mirror);
        let (s_shared, s) = mirror_sim::engine::Shared::new(ClientSink::new());
        let procs: Vec<Box<dyn SimProcess<Payload>>> =
            vec![Box::new(c_shared), Box::new(m_shared), Box::new(s_shared)];
        let mut sim = Sim::new(procs, LinkParams::intra_cluster());
        sim.set_link(0, 2, LinkParams::client_ethernet());
        sim.set_link(1, 2, LinkParams::client_ethernet());
        (sim, c, m, s)
    }

    #[test]
    fn events_flow_central_to_mirror_and_clients() {
        let (mut sim, central, mirror, sink) = build_cluster();
        for seq in 1..=120 {
            let e = Event::faa_position(seq, (seq % 5) as u32, fix())
                .with_total_size(1000)
                .with_ingress_us(0);
            sim.inject(0, 0, Payload::Source(e));
        }
        let end = sim.run();
        assert!(end > 0);
        let c = central.lock().unwrap();
        let m = mirror.lock().unwrap();
        let s = sink.lock().unwrap();
        assert_eq!(c.metrics.events_processed, 120, "central EDE sees all events");
        assert_eq!(m.metrics.events_processed, 120, "simple mirroring replicates all");
        assert_eq!(s.updates, 120, "clients receive every update");
        assert!(c.metrics.update_delay.count > 0);
        // With 120 events and checkpoint-every-50, at least two rounds ran
        // and both backup queues were pruned.
        assert!(c.aux_counters().checkpoints >= 2);
    }

    #[test]
    fn mirror_state_matches_central_under_simple_mirroring() {
        let (mut sim, central, mirror, _sink) = build_cluster();
        for seq in 1..=200 {
            let e = Event::faa_position(seq, (seq % 7) as u32, fix()).with_total_size(500);
            sim.inject(0, 0, Payload::Source(e));
        }
        sim.run();
        let c = central.lock().unwrap();
        let m = mirror.lock().unwrap();
        assert_eq!(c.state_hash(), m.state_hash(), "simple mirroring must replicate state exactly");
    }

    #[test]
    fn requests_are_buffered_served_and_answered() {
        let (mut sim, _central, mirror, sink) = build_cluster();
        // Seed some state first so snapshots are non-trivial.
        for seq in 1..=50 {
            let e = Event::faa_position(seq, (seq % 10) as u32, fix()).with_total_size(400);
            sim.inject(0, 0, Payload::Source(e));
        }
        for i in 0..20u64 {
            sim.inject(1000 + i, 1, Payload::Request(Request { at_us: 1000 + i, id: i + 1 }));
        }
        sim.run();
        let m = mirror.lock().unwrap();
        let s = sink.lock().unwrap();
        assert_eq!(m.metrics.requests_served, 20);
        assert_eq!(s.snapshots, 20);
        assert!(m.metrics.max_pending_requests >= 2, "burst must have queued");
        assert_eq!(m.pending_requests(), 0, "buffer drained");
        assert!(s.request_latency.count == 20 && s.request_latency.mean_us() > 0.0);
    }

    #[test]
    fn no_mirroring_baseline_skips_mirror_traffic() {
        let cost = CostModel::calibrated();
        let central_aux = MirrorConfig::default().build_central(Vec::new());
        let central = SiteProcess::central(central_aux, false, 0, Vec::new(), 1, cost);
        let (c_shared, c) = mirror_sim::engine::Shared::new(central);
        let (s_shared, s) = mirror_sim::engine::Shared::new(ClientSink::new());
        let procs: Vec<Box<dyn SimProcess<Payload>>> = vec![Box::new(c_shared), Box::new(s_shared)];
        let mut sim = Sim::new(procs, LinkParams::intra_cluster());
        sim.set_link(0, 1, LinkParams::client_ethernet());
        for seq in 1..=60 {
            sim.inject(0, 0, Payload::Source(Event::faa_position(seq, 1, fix())));
        }
        sim.run();
        let c = c.lock().unwrap();
        assert_eq!(c.aux_counters().mirrored, 0);
        assert_eq!(c.metrics.events_processed, 60);
        assert_eq!(s.lock().unwrap().updates, 60);
    }
}
