//! The experiment harness.
//!
//! Every figure in the paper's §4 is a run (or sweep) of
//! [`run`]: build a simulated cluster — central site, `mirrors` secondary
//! sites, a client-population sink — replay the FAA/Delta event sequence
//! and a client-request schedule, and report the paper's metrics: **total
//! execution time** for the whole sequence plus all requests, and **update
//! delay** (event ingress → EDE emission at the central site).
//!
//! Two ingestion modes match the two kinds of experiments:
//!
//! * [`Ingest::Backlog`] — the event sequence is presented as fast as the
//!   server can consume it (the paper's total-execution-time
//!   microbenchmarks, Figures 4–7);
//! * [`Ingest::Paced`] — events arrive on their capture-time schedule (the
//!   delay-over-time experiments, Figures 8–9).

use std::sync::{Arc, Mutex};

use mirror_core::adapt::{AdaptAction, MonitorKind, MonitorThresholds};
use mirror_core::api::MirrorConfig;
use mirror_core::metrics::{AuxCounters, DelayStats};
use mirror_core::mirrorfn::MirrorFnKind;
use mirror_sim::engine::{Shared, Sim, SimProcess};
use mirror_sim::{CostModel, LinkParams};
use mirror_workload::delta::{self, DeltaStreamConfig};
use mirror_workload::faa::{self, FaaStreamConfig};
use mirror_workload::merge_schedules;
use mirror_workload::requests::{RequestPattern, RequestSchedule};

use crate::payload::Payload;
use crate::site::{ClientSink, SiteProcess};

/// How the event sequence is presented to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// All events available immediately; the server runs flat out
    /// (total-execution-time experiments).
    Backlog,
    /// Events arrive at their capture-time schedule (delay experiments).
    Paced,
}

/// Which sites receive client requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestTargets {
    /// Requests balanced over every site, central included — the paper's
    /// §4.2 setup ("constant request load evenly distributed across the
    /// mirrors", the central site being the primary mirror).
    AllSites,
    /// Requests balanced over secondary mirrors only — the §1 deployment
    /// intent ("bursty client requests are directed to mirror sites").
    MirrorsOnly,
}

/// Adaptation configuration for a run (§3.2.2 / §4.3).
#[derive(Debug, Clone)]
pub struct AdaptSetup {
    /// Which variable is monitored.
    pub monitor: MonitorKind,
    /// Primary threshold (engage at ≥).
    pub primary: u64,
    /// Secondary threshold (release below primary − secondary).
    pub secondary: u64,
    /// What to change when engaged.
    pub action: AdaptAction,
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of secondary mirror sites.
    pub mirrors: usize,
    /// Mirroring configuration under test.
    pub kind: MirrorFnKind,
    /// Optional runtime adaptation.
    pub adapt: Option<AdaptSetup>,
    /// FAA position stream.
    pub faa: FaaStreamConfig,
    /// Optional Delta status stream.
    pub delta: Option<DeltaStreamConfig>,
    /// Client-request arrival pattern.
    pub requests: RequestPattern,
    /// Request-generation horizon (µs); 0 = use the FAA stream's span.
    pub request_horizon_us: u64,
    /// Which sites serve requests.
    pub targets: RequestTargets,
    /// Ingestion mode.
    pub ingest: Ingest,
    /// Override the checkpoint interval after the mirroring kind is
    /// installed (the Figure 7 "decreased checkpointing frequency" knob).
    pub checkpoint_every_override: Option<u32>,
    /// Cost model (calibrated by default).
    pub cost: CostModel,
    /// Override the intra-cluster link parameters (None = the calibrated
    /// high-bandwidth fabric).
    pub intra_link: Option<LinkParams>,
    /// Sending-task wakeup period for coalescing modes (µs).
    pub flush_period_us: u64,
    /// Simulated durability cost: charge the central sending task for
    /// journaling every mirrored event to a write-ahead log (`None` = the
    /// paper's in-memory-only protocol). Prices the `mirror-store`
    /// fsync-policy trade-off inside the §4-style experiments.
    pub journal: Option<crate::site::JournalCost>,
    /// Simulated epoch-keyed snapshot cache at every serving site (`None`
    /// = every request pays the full capture+encode cost — the pre-cache
    /// serving path). Prices the runtime's bounded-staleness storm-serving
    /// path inside the experiments.
    pub snapshot_cache: Option<crate::site::SnapshotCacheCost>,
    /// Seed for the request schedule.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            adapt: None,
            faa: FaaStreamConfig::default(),
            delta: None,
            requests: RequestPattern::None,
            request_horizon_us: 0,
            targets: RequestTargets::AllSites,
            ingest: Ingest::Backlog,
            checkpoint_every_override: None,
            intra_link: None,
            cost: CostModel::calibrated(),
            flush_period_us: 50_000,
            journal: None,
            snapshot_cache: None,
            seed: 7,
        }
    }
}

/// Everything a run reports.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Total execution time (s): until the last event is processed and the
    /// last request answered — the paper's scalability metric.
    pub total_time_s: f64,
    /// Update delay at the central EDE.
    pub update_delay: DelayStats,
    /// Median update delay (µs).
    pub update_delay_p50_us: u64,
    /// 99th-percentile update delay (µs).
    pub update_delay_p99_us: u64,
    /// Per-second mean update delay (µs): the Figure 9 series.
    pub delay_series: Vec<(f64, f64)>,
    /// Central auxiliary-unit counters.
    pub central: AuxCounters,
    /// EDE state hash per site (central first, then mirrors in order).
    pub state_hashes: Vec<u64>,
    /// Client requests served across all sites.
    pub requests_served: u64,
    /// Client-observed request latency.
    pub request_latency: DelayStats,
    /// Adaptation directives applied at the central site.
    pub adaptations: u64,
    /// Times (s) at which the central site reconfigured.
    pub adaptation_times_s: Vec<f64>,
    /// Total bytes mirrored by the central site (sum over destinations).
    pub mirrored_bytes: u64,
    /// Events presented to the system.
    pub events: u64,
    /// Largest pending-request backlog observed at any site.
    pub max_pending_requests: usize,
    /// CPU utilization per site over the run (central first): busy time /
    /// total time. The binding resource of each configuration.
    pub utilization: Vec<f64>,
}

/// Run one experiment.
pub fn run(cfg: &ExperimentConfig) -> ExperimentResult {
    let mirroring = cfg.kind.mirrors();
    let mirrors = if mirroring { cfg.mirrors } else { 0 };
    let sink_node = mirrors + 1;

    // ---- build sites ----------------------------------------------------
    let mirror_sites: Vec<u16> = (1..=mirrors as u16).collect();
    let mut central_aux = MirrorConfig::default().build_central(mirror_sites.clone());
    central_aux.install_kind(cfg.kind);
    if let Some(every) = cfg.checkpoint_every_override {
        let mut p = central_aux.params().clone();
        p.checkpoint_every = every.max(1);
        central_aux.set_params(p);
    }
    if let (Some(setup), Some(ctrl)) = (&cfg.adapt, central_aux.adaptation_mut()) {
        ctrl.set_monitor_values(
            setup.monitor,
            MonitorThresholds::new(setup.primary, setup.secondary),
        );
        ctrl.set_action(setup.action.clone());
    }
    let mut central = SiteProcess::central(
        central_aux,
        mirroring,
        0,
        (1..=mirrors).collect(),
        sink_node,
        cfg.cost,
    );
    if let Some(journal) = cfg.journal {
        central = central.with_journal(journal);
    }
    if let Some(cache) = cfg.snapshot_cache {
        central = central.with_snapshot_cache(cache);
    }
    let (central_shared, central_handle) = Shared::new(central);

    let mut mirror_handles: Vec<Arc<Mutex<SiteProcess>>> = Vec::new();
    let mut procs: Vec<Box<dyn SimProcess<Payload>>> = vec![Box::new(central_shared)];
    for site in mirror_sites {
        let mut aux = MirrorConfig::default().build_mirror(site);
        aux.install_kind(cfg.kind);
        let mut proc = SiteProcess::mirror(aux, site as usize, 0, sink_node, cfg.cost);
        if let Some(cache) = cfg.snapshot_cache {
            proc = proc.with_snapshot_cache(cache);
        }
        let (shared, handle) = Shared::new(proc);
        procs.push(Box::new(shared));
        mirror_handles.push(handle);
    }
    let (sink_shared, sink_handle) = Shared::new(ClientSink::new());
    procs.push(Box::new(sink_shared));

    let mut sim = Sim::new(procs, cfg.intra_link.unwrap_or_else(LinkParams::intra_cluster));
    for node in 0..=mirrors {
        sim.set_link(node, sink_node, LinkParams::client_ethernet());
    }

    // ---- workload -------------------------------------------------------
    let faa_events = faa::generate(&cfg.faa);
    let span = faa_events.last().map(|(t, _)| *t).unwrap_or(0);
    let mut schedules = vec![faa_events];
    if let Some(dc) = &cfg.delta {
        schedules.push(delta::generate(dc));
    }
    let events = merge_schedules(schedules);
    let n_events = events.len() as u64;

    match cfg.ingest {
        Ingest::Backlog => {
            for (_, e) in events {
                sim.inject(0, 0, Payload::Source(e));
            }
        }
        Ingest::Paced => {
            for (t, e) in events {
                sim.inject(t, 0, Payload::Source(e));
            }
        }
    }

    // Sending-task wakeups for coalescing configurations: without them a
    // sub-watermark tail would sit in the ready queue forever.
    let horizon = if cfg.request_horizon_us > 0 { cfg.request_horizon_us } else { span };
    if matches!(cfg.kind, MirrorFnKind::Coalescing { .. }) && cfg.flush_period_us > 0 {
        let mut t = cfg.flush_period_us;
        while t <= horizon.saturating_mul(2) {
            sim.inject(t, 0, Payload::Flush);
            t += cfg.flush_period_us;
        }
    }

    // ---- client requests --------------------------------------------------
    let schedule = RequestSchedule::generate(cfg.requests, horizon.max(1), cfg.seed);
    let n_requests = schedule.len() as u64;
    let target_nodes: Vec<usize> = match cfg.targets {
        RequestTargets::AllSites => (0..=mirrors).collect(),
        RequestTargets::MirrorsOnly if mirrors > 0 => (1..=mirrors).collect(),
        RequestTargets::MirrorsOnly => vec![0],
    };
    for (i, r) in schedule.requests.iter().enumerate() {
        let node = target_nodes[i % target_nodes.len()];
        sim.inject(r.at_us, node, Payload::Request(*r));
    }

    // ---- run (+ drain coalescing tails) -----------------------------------
    let mut total = sim.run();
    for _ in 0..3 {
        let t = sim.now().max(total) + 1;
        sim.inject(t, 0, Payload::Flush);
        total = total.max(sim.run());
    }
    let utilization: Vec<f64> = (0..=mirrors)
        .map(|n| {
            let stats = sim.node_stats(n);
            if total == 0 {
                0.0
            } else {
                stats.cpu_used as f64 / total as f64
            }
        })
        .collect();

    // ---- collect ----------------------------------------------------------
    let central = central_handle.lock().expect("central poisoned");
    let sink = sink_handle.lock().expect("sink poisoned");
    let mut state_hashes = vec![central.state_hash()];
    let mut requests_served = central.metrics.requests_served;
    let mut max_pending = central.metrics.max_pending_requests;
    for h in &mirror_handles {
        let m = h.lock().expect("mirror poisoned");
        state_hashes.push(m.state_hash());
        requests_served += m.metrics.requests_served;
        max_pending = max_pending.max(m.metrics.max_pending_requests);
    }
    debug_assert_eq!(requests_served, n_requests, "open-loop load must drain");

    let mut delay_dist = mirror_core::metrics::DelayDistribution::new();
    for &(_, v) in central.metrics.delay_series.samples() {
        delay_dist.record(v as u64);
    }
    ExperimentResult {
        total_time_s: mirror_sim::as_secs(total),
        update_delay: central.metrics.update_delay,
        update_delay_p50_us: delay_dist.percentile(50.0),
        update_delay_p99_us: delay_dist.percentile(99.0),
        delay_series: central
            .metrics
            .delay_series
            .bucket_mean(1_000_000)
            .into_iter()
            .map(|(t, v)| (t as f64 / 1e6, v))
            .collect(),
        central: central.aux_counters(),
        state_hashes,
        requests_served,
        request_latency: sink.request_latency,
        adaptations: central.metrics.adaptations,
        adaptation_times_s: central
            .metrics
            .adaptation_times
            .iter()
            .map(|&t| mirror_sim::as_secs(t))
            .collect(),
        mirrored_bytes: central.aux_counters().mirrored_bytes,
        events: n_events,
        max_pending_requests: max_pending,
        utilization,
    }
}

/// Convenience: assert all *mirror* sites hold identical state (the
/// replication invariant; the central may differ under selective rules
/// only in what was filtered, never among mirrors).
pub fn mirrors_consistent(result: &ExperimentResult) -> bool {
    result.state_hashes.len() <= 2 || result.state_hashes[1..].windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_faa(n: u64, size: usize) -> FaaStreamConfig {
        FaaStreamConfig {
            flights: 20,
            total_events: n,
            events_per_sec: 700.0,
            event_size: size,
            seed: 0xFAA,
            first_flight: 0,
        }
    }

    #[test]
    fn baseline_vs_simple_mirroring_overhead_band() {
        // Figure 4's headline: simple mirroring to one site costs roughly
        // 15–20% over no mirroring.
        let base = run(&ExperimentConfig {
            mirrors: 0,
            kind: MirrorFnKind::None,
            faa: small_faa(2000, 1000),
            ..Default::default()
        });
        let simple = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(2000, 1000),
            ..Default::default()
        });
        let ratio = simple.total_time_s / base.total_time_s;
        assert!(
            (1.08..=1.30).contains(&ratio),
            "simple/base = {ratio:.3} (base {:.2}s simple {:.2}s)",
            base.total_time_s,
            simple.total_time_s
        );
    }

    #[test]
    fn selective_mirroring_cuts_overhead() {
        let simple = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(2000, 4000),
            ..Default::default()
        });
        let selective = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Selective { overwrite: 10 },
            faa: small_faa(2000, 4000),
            ..Default::default()
        });
        assert!(
            selective.total_time_s < simple.total_time_s,
            "selective {:.2}s !< simple {:.2}s",
            selective.total_time_s,
            simple.total_time_s
        );
        assert!(selective.mirrored_bytes < simple.mirrored_bytes / 5);
    }

    #[test]
    fn mirrors_replicate_consistently() {
        let r = run(&ExperimentConfig {
            mirrors: 3,
            kind: MirrorFnKind::Simple,
            faa: small_faa(1500, 800),
            delta: Some(DeltaStreamConfig {
                flights: 20,
                span_us: 2_000_000,
                ..Default::default()
            }),
            ..Default::default()
        });
        assert!(mirrors_consistent(&r), "hashes {:?}", r.state_hashes);
        // Under simple mirroring every site (central included) agrees.
        assert!(
            r.state_hashes.windows(2).all(|w| w[0] == w[1]),
            "simple mirroring replicates everything: {:?}",
            r.state_hashes
        );
    }

    #[test]
    fn requests_all_served_and_latency_positive() {
        let r = run(&ExperimentConfig {
            mirrors: 2,
            kind: MirrorFnKind::Simple,
            faa: small_faa(800, 500),
            requests: RequestPattern::Constant { rate: 100.0 },
            targets: RequestTargets::MirrorsOnly,
            ..Default::default()
        });
        assert!(r.requests_served > 0);
        assert_eq!(r.request_latency.count, r.requests_served);
        assert!(r.request_latency.mean_us() > 0.0);
    }

    #[test]
    fn request_load_slows_the_run() {
        let quiet = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(1500, 1000),
            ..Default::default()
        });
        let loaded = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(1500, 1000),
            requests: RequestPattern::Constant { rate: 300.0 },
            ..Default::default()
        });
        assert!(loaded.total_time_s > quiet.total_time_s);
    }

    #[test]
    fn paced_ingest_records_time_spread_series() {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(2000, 600),
            ingest: Ingest::Paced,
            ..Default::default()
        });
        assert!(r.delay_series.len() >= 2, "series {:?}", r.delay_series.len());
    }

    #[test]
    fn coalescing_mode_drains_fully() {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
            faa: small_faa(1003, 700), // not a multiple of the watermark
            ..Default::default()
        });
        // Every event reached the mirror EDE (as a coalesced representative
        // or directly): the mirror state hash must match a directly fed one.
        assert_eq!(r.events, 1003);
        assert!(mirrors_consistent(&r));
        assert!(r.central.mirrored > 0);
        assert!(
            r.central.mirrored < 1003 / 5,
            "coalescing must compress: {} wire events",
            r.central.mirrored
        );
    }

    #[test]
    fn journaling_costs_a_bounded_premium() {
        // Durability is not free, but with the every-64 fsync amortization
        // it must stay a modest tax on simple mirroring (the bench's
        // < 15 % acceptance bound, with margin for the sim's coarser
        // model).
        let plain = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(2000, 1000),
            ..Default::default()
        });
        let journaled = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Simple,
            faa: small_faa(2000, 1000),
            journal: Some(crate::site::JournalCost::default()),
            ..Default::default()
        });
        let ratio = journaled.total_time_s / plain.total_time_s;
        assert!(ratio > 1.0, "journaling must cost something, ratio={ratio:.3}");
        assert!(ratio < 1.15, "journaling premium out of band: {ratio:.3}");
        // Durability must not change what the mirrors converge to.
        assert_eq!(journaled.state_hashes, plain.state_hashes);
    }

    #[test]
    fn adaptation_engages_under_storm() {
        let r = run(&ExperimentConfig {
            mirrors: 1,
            kind: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
            adapt: Some(AdaptSetup {
                monitor: MonitorKind::PendingRequests,
                primary: 20,
                secondary: 15,
                action: AdaptAction::SwitchMirrorFn {
                    normal: MirrorFnKind::Coalescing { coalesce: 10, checkpoint_every: 50 },
                    engaged: MirrorFnKind::Coalescing { coalesce: 20, checkpoint_every: 100 },
                },
            }),
            faa: small_faa(4000, 800),
            ingest: Ingest::Paced,
            requests: RequestPattern::RecoveryStorm {
                at_us: 1_000_000,
                count: 300,
                spread_us: 200_000,
            },
            targets: RequestTargets::MirrorsOnly,
            ..Default::default()
        });
        assert!(r.adaptations >= 1, "storm must trigger adaptation");
        assert!(r.max_pending_requests >= 20);
    }

    #[test]
    fn snapshot_cache_absorbs_a_recovery_storm() {
        // Same storm, with and without the simulated epoch-keyed snapshot
        // cache: the cached run answers most requests at hit cost, so the
        // storm resolves sooner and request latency collapses.
        let storm = |cache: Option<crate::site::SnapshotCacheCost>| {
            run(&ExperimentConfig {
                mirrors: 1,
                kind: MirrorFnKind::Simple,
                faa: small_faa(3000, 1000),
                ingest: Ingest::Paced,
                requests: RequestPattern::RecoveryStorm {
                    at_us: 1_000_000,
                    count: 400,
                    spread_us: 100_000,
                },
                targets: RequestTargets::MirrorsOnly,
                snapshot_cache: cache,
                ..Default::default()
            })
        };
        let plain = storm(None);
        let cached = storm(Some(crate::site::SnapshotCacheCost::default()));
        assert_eq!(plain.requests_served, 400);
        assert_eq!(cached.requests_served, 400);
        assert!(
            cached.request_latency.mean_us() < plain.request_latency.mean_us(),
            "cache must cut storm latency: cached {:.0}µs vs plain {:.0}µs",
            cached.request_latency.mean_us(),
            plain.request_latency.mean_us()
        );
        assert!(
            cached.total_time_s <= plain.total_time_s,
            "cached storm must not extend the run: {:.3}s vs {:.3}s",
            cached.total_time_s,
            plain.total_time_s
        );
    }
}
