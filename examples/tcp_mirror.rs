//! A mirror site on the other side of a real TCP connection.
//!
//! The paper's deployment puts mirror sites on separate cluster nodes; this
//! example runs the same split over loopback TCP using the `mirror-echo`
//! framed transport and the `mirror-runtime` bridge: the "central process"
//! publishes data/control frames over one socket pair, the "mirror
//! process" (a thread here, a separate machine in production) runs a full
//! mirror site against the bridged channels and sends its checkpoint
//! replies back.
//!
//! Run with: `cargo run --example tcp_mirror`

use std::net::TcpListener;
use std::time::Duration;

use adaptable_mirroring::core::api::{MirrorConfig, MirrorHandle};
use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::timestamp::VectorTimestamp;
use adaptable_mirroring::core::ControlMsg;
use adaptable_mirroring::echo::channel::EventChannel;
use adaptable_mirroring::echo::transport::TcpTransport;
use adaptable_mirroring::runtime::bridge::{central_endpoint, mirror_endpoint};
use adaptable_mirroring::runtime::{MirrorSite, RuntimeClock};

fn fix() -> PositionFix {
    PositionFix { lat: 47.4, lon: -122.3, alt_ft: 12_000.0, speed_kts: 380.0, heading_deg: 180.0 }
}

fn main() {
    // Two unidirectional TCP connections: downlink + uplink.
    let down_listener = TcpListener::bind("127.0.0.1:0").expect("bind downlink");
    let up_listener = TcpListener::bind("127.0.0.1:0").expect("bind uplink");
    let down_addr = down_listener.local_addr().unwrap();
    let up_addr = up_listener.local_addr().unwrap();

    // --- the "mirror process" ---------------------------------------------
    let mirror_proc = std::thread::spawn(move || {
        let down = TcpTransport::accept_one(&down_listener).expect("accept downlink");
        let up = TcpTransport::connect(up_addr).expect("connect uplink");
        let (mut site, bridge) =
            mirror_endpoint(Box::new(down), Box::new(up), |data, ctrl_down, ctrl_up| {
                MirrorSite::start(
                    MirrorHandle::new(MirrorConfig::default().build_mirror(1)),
                    RuntimeClock::new(),
                    data,
                    ctrl_down,
                    ctrl_up.publisher(),
                )
            });
        // Serve until the stream has fully arrived, then report.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while site.processed() < 500 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let processed = site.processed();
        let hash = site.state_hash();
        let snapshot = site.snapshot();
        site.stop();
        bridge.stop();
        bridge.join();
        (processed, hash, snapshot)
    });

    // --- the "central process" ----------------------------------------------
    let data = EventChannel::new("central.data");
    let ctrl_down = EventChannel::new("central.ctrl.down");
    let ctrl_up = EventChannel::new("central.ctrl.up");
    let down = TcpTransport::connect(down_addr).expect("connect downlink");
    let up = TcpTransport::accept_one(&up_listener).expect("accept uplink");
    let bridge =
        central_endpoint(&data, &ctrl_down, ctrl_up.publisher(), Box::new(down), Box::new(up));

    // Publish the stream (stamped, as the central receiving task would).
    let pub_data = data.publisher();
    let mut clock = VectorTimestamp::new(1);
    let mut reference = adaptable_mirroring::ede::Ede::new();
    for seq in 1..=500u64 {
        let mut e = Event::faa_position(seq, (seq % 25) as u32, fix()).with_total_size(512);
        clock.advance(0, seq);
        e.stamp = clock.clone();
        reference.process(&e);
        pub_data.publish(e.into());
    }
    // Run one checkpoint round across the wire.
    let up_sub = ctrl_up.subscribe();
    ctrl_down.publisher().publish(ControlMsg::Chkpt {
        round: 1,
        stamp: clock.clone(),
        epoch: 0,
        term: 0,
    });
    let reply = up_sub.recv_timeout(Duration::from_secs(10));
    // Signal our endpoint before joining the mirror process: its bridge
    // join completes only once this side's writer closes (see BridgeHandle).
    bridge.stop();
    let (processed, hash, snapshot) = mirror_proc.join().expect("mirror process");

    println!("mirror processed over TCP : {processed}/500");
    println!("state hash central=mirror : {}", hash == reference.state_hash());
    println!("checkpoint reply          : {reply:?}");
    println!("snapshot flights          : {}", snapshot.flight_count());

    assert_eq!(processed, 500);
    assert_eq!(hash, reference.state_hash(), "TCP mirror must replicate exactly");
    assert!(matches!(reply, Some(ControlMsg::ChkptRep { site: 1, .. })));

    bridge.join();
    println!("done.");
}
