//! Inclement weather — the paper's Case (2) (§1): "in inclement weather
//! conditions, it would be appropriate to track planes at increased levels
//! of precision, thus resulting in increased loads on servers… and in
//! increased communication loads due to the distribution of tracking
//! data."
//!
//! The scenario demonstrates *application-specific* mirroring: when the
//! weather turns, the operator tightens what gets mirrored — low-altitude
//! (approach-phase) traffic keeps full fidelity while cruise traffic is
//! aggressively overwritten — trading mirror-state precision where it is
//! cheap for bandwidth where it matters. Semantic rules also discard FAA
//! fixes for flights that already landed (the paper's
//! `set_complex_seq(Delta, landed, FAA)` example) and collapse the
//! landing/runway/gate triple into one derived `Arrived` event
//! (`set_complex_tuple`).
//!
//! Run with: `cargo run --example inclement_weather`

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, EventType, FlightStatus, PositionFix};
use adaptable_mirroring::core::rules::{ContentPredicate, Rule};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix(alt: f64) -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: alt, speed_kts: 300.0, heading_deg: 90.0 }
}

fn main() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    let handle = cluster.central().handle().clone();

    // -- storm configuration ---------------------------------------------
    // Cruise traffic (≥ 10k ft): mirror 1-in-10 and drop anything above
    // 20k ft entirely — approach traffic keeps full fidelity.
    handle.set_overwrite(EventType::FaaPosition, 10);
    handle.with(|aux| {
        aux.rules_mut().push(Rule::Filter {
            ty: EventType::FaaPosition,
            pred: ContentPredicate::AltitudeAtLeast(20_000.0),
        });
    });
    // Once a flight lands, its FAA fixes are noise.
    handle.set_complex_seq(EventType::DeltaStatus, FlightStatus::Landed, EventType::FaaPosition);
    // Collapse the arrival triple into one derived event.
    handle.set_complex_tuple(
        vec![FlightStatus::Landed, FlightStatus::AtRunway, FlightStatus::AtGate],
        FlightStatus::Arrived,
    );

    // -- traffic ------------------------------------------------------------
    let mut seq = 0u64;
    // Flight 1: on approach, descending through the storm — every fix counts.
    // Flight 2: in cruise high above it — heavily overwritten/filtered.
    // Flight 3: landing during the window.
    for round in 0..60 {
        seq += 1;
        cluster.submit(Event::faa_position(seq, 1, fix(8_000.0 - round as f64 * 100.0)));
        seq += 1;
        cluster.submit(Event::faa_position(seq, 2, fix(35_000.0)));
        seq += 1;
        cluster.submit(Event::faa_position(seq, 3, fix(3_000.0 - round as f64 * 50.0)));
    }
    let mut dseq = 0u64;
    for status in [FlightStatus::Landed, FlightStatus::AtRunway, FlightStatus::AtGate] {
        dseq += 1;
        cluster.submit(Event::delta_status(dseq, 3, status));
    }
    // Post-landing FAA noise for flight 3: discarded by the sequence rule.
    for _ in 0..20 {
        seq += 1;
        cluster.submit(Event::faa_position(seq, 3, fix(0.0)));
    }

    let total = 60 * 3 + 3 + 20;
    assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= total));
    std::thread::sleep(Duration::from_millis(100)); // mirror drain

    let central = cluster.central().processed();
    let mirrored = cluster.mirror(1).processed();
    let suppressed = cluster.central().handle().with(|a| a.counters().suppressed);
    println!("events processed centrally : {central}");
    println!("events reaching the mirror : {mirrored}");
    println!("suppressed by rules        : {suppressed}");
    println!(
        "mirroring traffic reduction: {:.0}%",
        (1.0 - mirrored as f64 / central as f64) * 100.0
    );

    // The mirror still knows what matters: flight 3 arrived, flight 1 is
    // tracked on approach.
    let snap = cluster.snapshot(1).unwrap();
    println!("mirror view of flight 3    : {:?}", snap.flight(3).map(|f| f.status));
    println!(
        "mirror tracks approach flt 1: {}",
        snap.flight(1).map(|f| f.position.is_some()).unwrap_or(false)
    );
    assert_eq!(snap.flight(3).map(|f| f.status), Some(FlightStatus::Arrived));
    assert!(mirrored < central / 2, "storm rules must cut mirror traffic");

    cluster.shutdown();
    println!("done.");
}
