//! Mirror failure and recovery — the paper's §6 extension in action.
//!
//! A cluster streams flight events while mirror 2 serves its share of
//! thin-client requests. The node crashes mid-run; the checkpoint
//! coordinator's failure detector notices the silence, excludes it (so
//! commits resume among the survivors), and the load balancer redirects
//! its requests. A replacement node is then seeded from the central
//! site's state and readmitted — clients never see an error.
//!
//! Run with: `cargo run --example failover`

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ois::balancer::{Balancer, BalancerPolicy};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 25.0 + (seq % 40) as f64 * 0.2,
        lon: -80.0 - (seq % 17) as f64 * 0.4,
        alt_ft: 31_000.0,
        speed_kts: 470.0,
        heading_deg: 315.0,
    }
}

fn feed(cluster: &Cluster, seq: &mut u64, n: u64) {
    for _ in 0..n {
        *seq += 1;
        cluster.submit(Event::faa_position(*seq, (*seq % 12) as u32, fix(*seq)));
        if seq.is_multiple_of(10) {
            std::thread::sleep(Duration::from_micros(400));
        }
    }
}

fn main() {
    let cluster = Cluster::start(ClusterConfig {
        mirrors: 2,
        kind: MirrorFnKind::Simple,
        suspect_after: 5,
        durability: None,
        failover: None,
        scale: None,
        ..Default::default()
    });
    cluster.central().handle().set_params(false, 1, 20);
    let mut balancer = Balancer::new(vec![1, 2], BalancerPolicy::RoundRobin);
    let mut seq = 0u64;
    let mut served = 0u64;

    // Normal operations: stream events, serve requests from both mirrors.
    feed(&cluster, &mut seq, 200);
    for _ in 0..10 {
        let site = balancer.pick().unwrap();
        let snap = cluster.snapshot(site).expect("live site");
        assert!(snap.flight_count() > 0);
        served += 1;
    }
    println!("phase 1: {} events, {served} requests over 2 mirrors", seq);

    // Mirror 2 crashes.
    cluster.fail_mirror(2).unwrap();
    println!("phase 2: mirror 2 crashed");
    feed(&cluster, &mut seq, 300);
    let detected = cluster.wait(Duration::from_secs(10), |c| !c.failed_mirrors().is_empty());
    println!("detector flagged: {:?} (detected={detected})", cluster.failed_mirrors());
    for &site in &cluster.failed_mirrors() {
        balancer.mark_failed(site);
    }
    // Requests keep flowing through the survivor.
    for _ in 0..10 {
        let site = balancer.pick().expect("a live mirror remains");
        assert_ne!(site, 2, "balancer must avoid the failed site");
        let snap = cluster.snapshot(site).expect("live site");
        assert!(snap.flight_count() > 0);
        served += 1;
    }
    // …and commits resume without mirror 2.
    feed(&cluster, &mut seq, 100);
    let target = seq - 50;
    let commits_resumed = cluster.wait(Duration::from_secs(10), |c| {
        c.central().committed().map(|t| t.get(0) >= target).unwrap_or(false)
    });
    println!("commits past the crash point: {commits_resumed}");

    // A replacement node comes up, seeded from the central site.
    cluster.rejoin_mirror(2).unwrap();
    balancer.mark_recovered(2);
    println!("phase 3: mirror 2 rejoined (seeded from central)");
    feed(&cluster, &mut seq, 200);
    let converged = cluster.wait(Duration::from_secs(10), |c| {
        let h = c.state_hashes();
        h.windows(2).all(|w| w[0] == w[1])
    });
    println!("replacement converged to cluster state: {converged}");
    for _ in 0..10 {
        let site = balancer.pick().unwrap();
        let snap = cluster.snapshot(site).expect("live site");
        assert!(snap.flight_count() > 0);
        served += 1;
    }
    println!(
        "final: {} events, {served} requests served, state hashes {:?}",
        seq,
        cluster.state_hashes()
    );
    assert!(detected && commits_resumed && converged);
    cluster.shutdown();
    println!("done.");
}
