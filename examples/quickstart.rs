//! Quickstart: bring up a mirrored cluster server, stream flight events
//! through it, reconfigure mirroring live through the paper's Table-1 API,
//! and serve a thin client's initial-state request from a mirror.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, EventType, FlightStatus, PositionFix};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix(lat: f64, lon: f64, alt: f64) -> PositionFix {
    PositionFix { lat, lon, alt_ft: alt, speed_kts: 450.0, heading_deg: 270.0 }
}

fn main() {
    // 1. Start a cluster: one central site + two mirror sites, default
    //    (simple) mirroring — every event replicated to every mirror.
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    let updates = cluster.subscribe_updates();

    // 2. Stream the morning's operations: positions + status transitions.
    let mut seq = 0u64;
    for round in 0..20 {
        for flight in 0..5u32 {
            seq += 1;
            cluster.submit(Event::faa_position(
                seq,
                flight,
                fix(33.0 + round as f64 * 0.1, -84.0, 5_000.0 + round as f64 * 1_000.0),
            ));
        }
    }
    cluster.submit(Event::delta_status(1, 2, FlightStatus::Landed));
    cluster.submit(Event::delta_status(2, 2, FlightStatus::AtGate));

    assert!(cluster.wait_all_processed(102, Duration::from_secs(5)));
    println!("central processed : {}", cluster.central().processed());
    println!("state hashes      : {:?} (all equal = replicated)", cluster.state_hashes());
    println!("updates delivered : {}", updates.backlog());
    println!("arrival derived   : flight 2 is {:?}", {
        let snap = cluster.snapshot(0).unwrap();
        snap.flight(2).map(|f| f.status)
    });

    // 3. A gate display at the airport reboots: it asks a *mirror* (not
    //    the central site) for its initial state, then replays updates.
    let snapshot = cluster.snapshot(2).unwrap();
    println!(
        "thin client recovered from mirror 2: {} flights, as of {}",
        snapshot.flight_count(),
        snapshot.as_of
    );

    // 4. Afternoon storm traffic forecast: switch to selective mirroring
    //    dynamically (Table-1 `set_overwrite`) — mirror 1-in-10 positions.
    cluster.central().handle().set_overwrite(EventType::FaaPosition, 10);
    let before = cluster.mirror(1).processed();
    for _ in 0..100 {
        seq += 1;
        cluster.submit(Event::faa_position(seq, 9, fix(40.0, -90.0, 33_000.0)));
    }
    assert!(cluster.wait(Duration::from_secs(5), |c| c.central().processed() >= 202));
    std::thread::sleep(Duration::from_millis(100)); // let mirrors drain
    let mirrored = cluster.mirror(1).processed() - before;
    println!("selective mirroring: mirror saw {mirrored} of 100 new events (≈10 expected)");

    cluster.shutdown();
    println!("done.");
}
