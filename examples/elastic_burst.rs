//! Elastic mirroring under an airport request storm — membership as a
//! runtime control plane. The cluster starts with a single mirror; a
//! terminal's worth of displays storms the request gateways; the central
//! `ScalePolicy` watches the pending-request gauge ride checkpoint
//! replies and spawns a second mirror **mid-traffic** — seeded from the
//! epoch-cached snapshot frame, admitted at the next membership epoch,
//! and immediately routable. When the storm quiesces, the same policy
//! retires it again. Every transition is epoch-stamped; the front-end
//! balancer follows the membership view and the run prints per-epoch
//! routing stats.
//!
//! Run with: `cargo run --example elastic_burst`

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptable_mirroring::core::adapt::{MonitorThresholds, ScalePolicy};
use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ois::balancer::{Balancer, BalancerPolicy};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig, RequestGateway, ScaleEvent};

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 30.0 + (seq % 19) as f64 * 0.3,
        lon: -95.0 + (seq % 23) as f64 * 0.5,
        alt_ft: 29_000.0,
        speed_kts: 450.0,
        heading_deg: (seq % 360) as f64,
    }
}

/// Snapshot the balancer's per-site dispatch counters.
fn routing(balancer: &Balancer) -> Vec<(u16, u64)> {
    balancer.sites().into_iter().map(|s| (s, balancer.dispatched_to(s))).collect()
}

fn main() {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 1,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        durability: None,
        failover: None,
        scale: Some(ScalePolicy {
            thresholds: MonitorThresholds::new(12, 8),
            sustain: 2,
            cooldown: 4,
            max_mirrors: 2,
            min_mirrors: 1,
        }),
        ..Default::default()
    }));
    cluster.central().handle().set_params(false, 1, 10);

    // Front-end: least-pending balancer over the live membership, reading
    // each site's gateway gauge directly.
    let mut balancer = Balancer::new(vec![1], BalancerPolicy::LeastPending);
    let mut gateways: HashMap<u16, RequestGateway> = HashMap::new();
    gateways.insert(1, cluster.mirror(1).serve_requests(Duration::from_millis(3)));
    balancer.attach_gauge(1, cluster.mirror(1).pending_gauge());

    // Steady flight stream keeps checkpoint rounds — the scale-signal
    // transport — turning over for the whole run.
    let stop = Arc::new(AtomicBool::new(false));
    let seq = Arc::new(AtomicU64::new(0));
    let feeder = {
        let (cluster, stop, seq) = (Arc::clone(&cluster), Arc::clone(&stop), Arc::clone(&seq));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let s = seq.fetch_add(1, Ordering::Relaxed) + 1;
                cluster.submit(Event::faa_position(s, (s % 24) as u32, fix(s)));
                std::thread::sleep(Duration::from_micros(250));
            }
        })
    };

    println!("epoch {}: membership {:?} — storm begins", cluster.epoch(), cluster.mirror_ids());
    let mut per_epoch: Vec<(u64, Vec<(u16, u64)>)> = Vec::new();

    // -- storm: displays reconnect in bursts ----------------------------
    let mut receivers = Vec::new();
    let mut spawned_at = None;
    let storm_start = Instant::now();
    while spawned_at.is_none() && storm_start.elapsed() < Duration::from_secs(20) {
        for _ in 0..40 {
            let site = balancer.pick().expect("a live mirror");
            receivers.push(gateways[&site].client().fire().expect("fire"));
        }
        for ev in cluster.poll_scale() {
            if let ScaleEvent::Spawned { site, epoch } = ev {
                println!(
                    "epoch {epoch}: mirror {site} spawned mid-storm \
                     ({:?} after storm start)",
                    storm_start.elapsed()
                );
                per_epoch.push((epoch - 1, routing(&balancer)));
                // The balancer follows the membership view; the fresh
                // site gets its own gateway and gauge and joins routing.
                balancer.sync(&cluster.membership());
                gateways
                    .insert(site, cluster.mirror(site).serve_requests(Duration::from_millis(3)));
                balancer.attach_gauge(site, cluster.mirror(site).pending_gauge());
                spawned_at = Some(Instant::now());
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(spawned_at.is_some(), "storm must trigger scale-out");

    // Keep the storm going briefly so the new mirror takes real load.
    for _ in 0..10 {
        for _ in 0..20 {
            let site = balancer.pick().expect("a live mirror");
            receivers.push(gateways[&site].client().fire().expect("fire"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let served = receivers.len();
    for r in receivers {
        let _ = r.recv_timeout(Duration::from_secs(10));
    }
    println!("storm served: {served} requests over {:?}", storm_start.elapsed());

    // The spawned mirror holds the replicated state.
    let converged = cluster.wait(Duration::from_secs(10), |c| {
        let h = c.state_hashes();
        c.mirror(2).processed() > 0 && h.windows(2).all(|w| w[0] == w[1])
    });
    println!("spawned mirror state-converged: {converged}");

    // -- quiesce: the same policy scales back in -------------------------
    let quiesce_start = Instant::now();
    let mut retired = false;
    while !retired && quiesce_start.elapsed() < Duration::from_secs(20) {
        for ev in cluster.poll_scale() {
            if let ScaleEvent::Retired { site, epoch } = ev {
                println!(
                    "epoch {epoch}: mirror {site} retired on quiesce \
                     ({:?} after storm end)",
                    quiesce_start.elapsed()
                );
                per_epoch.push((epoch - 1, routing(&balancer)));
                if let Some(gw) = gateways.remove(&site) {
                    gw.stop();
                }
                balancer.sync(&cluster.membership());
                retired = true;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(retired, "quiesce must retire the spawned mirror");
    per_epoch.push((cluster.epoch(), routing(&balancer)));

    println!("\nper-epoch routing (site: requests dispatched, cumulative):");
    for (epoch, stats) in &per_epoch {
        let line: Vec<String> = stats.iter().map(|(s, n)| format!("site {s}: {n}")).collect();
        println!("  epoch {epoch}: [{}]", line.join(", "));
    }
    println!(
        "final membership (epoch {}): {:?} — ids are never reused",
        cluster.epoch(),
        cluster.mirror_ids()
    );

    stop.store(true, Ordering::Relaxed);
    feeder.join().expect("feeder");
    for (_, gw) in gateways {
        gw.stop();
    }
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("all threads joined"),
    }
    println!("done.");
}
