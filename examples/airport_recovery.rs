//! Airport-terminal recovery — the paper's Case (1) (§1): "'bringing up'
//! an airport terminal after a power failure requires the terminal's many
//! thin clients to be re-supplied quickly with suitable initial states,
//! thereby once again enabling them to interpret the regular flow of data
//! events issued by the server."
//!
//! The scenario: a cluster serves a steady flight-event stream; a terminal
//! with 120 displays loses power and recovers — every display requests an
//! initial-state snapshot at once. Requests are load-balanced across the
//! mirror sites, the central site keeps streaming undisturbed, and each
//! display verifies it can resynchronize by replaying the updates that
//! arrived after its snapshot frontier.
//!
//! Run with: `cargo run --example airport_recovery`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptable_mirroring::core::event::{Event, PositionFix};
use adaptable_mirroring::core::mirrorfn::MirrorFnKind;
use adaptable_mirroring::ois::balancer::{Balancer, BalancerPolicy};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

const DISPLAYS: usize = 120;
const FLIGHTS: u32 = 40;

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 30.0 + (seq % 19) as f64 * 0.3,
        lon: -95.0 + (seq % 23) as f64 * 0.5,
        alt_ft: 28_000.0,
        speed_kts: 460.0,
        heading_deg: (seq % 360) as f64,
    }
}

fn main() {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        mirrors: 4,
        kind: MirrorFnKind::Simple,
        suspect_after: 0,
        ..Default::default()
    }));

    // Background ops feed: a steady stream of position updates.
    let seq = Arc::new(AtomicU64::new(0));
    let feeder = {
        let cluster = Arc::clone(&cluster);
        let seq = Arc::clone(&seq);
        std::thread::spawn(move || {
            for _ in 0..3_000 {
                let s = seq.fetch_add(1, Ordering::Relaxed) + 1;
                cluster.submit(Event::faa_position(s, (s % FLIGHTS as u64) as u32, fix(s)));
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    // Let some state accumulate before the "power failure".
    std::thread::sleep(Duration::from_millis(200));

    // Terminal power restored: every display requests its initial state at
    // once, balanced round-robin across the mirror sites (1..=4).
    let mut balancer = Balancer::new(vec![1, 2, 3, 4], BalancerPolicy::RoundRobin);
    let storm_start = Instant::now();
    let mut worst = Duration::ZERO;
    let mut recovered = 0usize;
    let mut handles = Vec::new();
    for display in 0..DISPLAYS {
        let site = balancer.pick().expect("mirrors alive");
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let snap = cluster.snapshot(site).expect("mirror live");
            (display, site, snap, t0.elapsed())
        }));
    }
    for h in handles {
        let (_display, _site, snap, latency) = h.join().expect("display thread");
        worst = worst.max(latency);
        // The display verifies it can resume: move the snapshot into an
        // operational state (no second deep-clone) and check it holds a
        // view for every active flight.
        let restored = snap.into_state();
        assert!(restored.flight_count() > 0, "snapshot must carry state");
        recovered += 1;
    }
    let storm_total = storm_start.elapsed();

    feeder.join().expect("feeder");
    let n = seq.load(Ordering::Relaxed);
    assert!(cluster.wait_all_processed(n, Duration::from_secs(10)));

    println!("displays recovered       : {recovered}/{DISPLAYS}");
    println!("storm wall time          : {storm_total:?} (worst display {worst:?})");
    println!(
        "requests per mirror      : {:?}",
        cluster
            .mirror_ids()
            .iter()
            .map(|&s| cluster.mirror(s).counters().snapshots.load(Ordering::Relaxed))
            .collect::<Vec<_>>()
    );
    println!("events streamed          : {n}");
    println!("central mean update delay: {:.0}µs", cluster.central().counters().mean_delay_us());
    let hashes = cluster.state_hashes();
    println!("replication consistent   : {}", hashes.windows(2).all(|w| w[0] == w[1]));

    // The paper's predictability requirement: initializations within a
    // minute — here the whole storm resolves in well under a second.
    assert!(storm_total < Duration::from_secs(60));
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("all display threads joined"),
    }
    println!("done.");
}
