//! Airport displays at fan-out scale — the edge delivery tier.
//!
//! §2's simplest clients are flight displays: long-lived subscribers that
//! just watch derived state change. This example puts the `mirror-edge`
//! tier in front of a live mirror and drives a few hundred of them: lobby
//! displays subscribed to everything, gate displays to a handful of
//! flights each. One display loses its connection mid-stream and resumes
//! from its last received sequence — the edge replays the retained window
//! (or reseeds from a snapshot) so the display converges without ever
//! re-fetching the world.
//!
//! Run with: `cargo run --example edge_fanout`

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, FlightStatus, PositionFix};
use adaptable_mirroring::echo::SubscriptionFilter;
use adaptable_mirroring::ede::OperationalState;
use adaptable_mirroring::edge::{views_equivalent, Delivery, EdgeClient, EdgeConfig};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

const DISPLAYS: u64 = 300;
const FLIGHTS: u32 = 16;
const EVENTS: u64 = 600;

fn fix(seq: u64) -> PositionFix {
    PositionFix {
        lat: 33.0 + (seq % 13) as f64 * 0.5,
        lon: -84.0 - (seq % 7) as f64 * 0.3,
        alt_ft: 31_000.0,
        speed_kts: 455.0,
        heading_deg: (seq % 360) as f64,
    }
}

/// Drain everything currently queued for a display into its local state,
/// returning the last publication sequence it reached.
fn drain(display: &EdgeClient, state: &mut OperationalState, last: &mut u64) {
    while let Ok(Some(d)) = display.poll() {
        match d {
            Delivery::Event(ev) => {
                state.apply(ev.event());
                *last = ev.pub_seq();
            }
            Delivery::Reseed { pub_seq, snapshot } => {
                let snap = adaptable_mirroring::echo::wire::decode_snapshot(snapshot)
                    .expect("decode reseed snapshot");
                *state = snap.into_state();
                *last = pub_seq;
            }
            Delivery::DeltaReseed { pub_seq, delta } => {
                let d = adaptable_mirroring::echo::wire::decode_delta(delta)
                    .expect("decode delta reseed");
                state.apply_delta(&d);
                *last = pub_seq;
            }
        }
    }
}

fn main() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 1, ..Default::default() });
    let edge = cluster.serve_edge(1, EdgeConfig::default()).expect("edge tier on mirror 1");

    // The display wall: every tenth display is a lobby board (all
    // flights); the rest are gate boards watching two flights each.
    let mut displays: Vec<EdgeClient> = (0..DISPLAYS)
        .map(|id| {
            let filter = if id % 10 == 0 {
                SubscriptionFilter::All
            } else {
                SubscriptionFilter::Flights(vec![(id % u64::from(FLIGHTS)) as u32, 0])
            };
            edge.subscribe(id, filter)
        })
        .collect();
    println!("{} displays subscribed ({} known to the edge)", DISPLAYS, edge.known_clients());

    // A morning of operations, streamed through the cluster. Display 0
    // (a lobby board) is rebooted halfway through.
    let mut lobby_state = OperationalState::new();
    let mut lobby_last = 0u64;
    for seq in 1..=EVENTS {
        let flight = (seq % u64::from(FLIGHTS)) as u32;
        if seq % 40 == 0 {
            cluster.submit(Event::delta_status(seq, flight, FlightStatus::Boarding));
        } else {
            cluster.submit(Event::faa_position(seq, flight, fix(seq)));
        }
        if seq % 25 == 0 {
            // Pace the feed so pushes flow to the wall mid-run.
            std::thread::sleep(Duration::from_millis(5));
        }
        if seq == EVENTS / 2 {
            let lobby = displays.remove(0);
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while lobby_last == 0 {
                drain(&lobby, &mut lobby_state, &mut lobby_last);
                assert!(std::time::Instant::now() < deadline, "no deliveries before reboot");
                std::thread::sleep(Duration::from_millis(5));
            }
            println!("lobby display reboots at pub_seq {lobby_last}…");
            lobby.disconnect();
        }
    }
    assert!(cluster.wait_all_processed(EVENTS, Duration::from_secs(10)));

    // Let the update pump drain into the edge, then flush delivery.
    let mut frontier = edge.pub_seq();
    loop {
        std::thread::sleep(Duration::from_millis(30));
        let now = edge.pub_seq();
        if now == frontier && now > 0 {
            break;
        }
        frontier = now;
    }
    edge.quiesce();

    // The rebooted display resumes from its last received sequence: the
    // edge replays the retained window from exactly there (the attach is
    // handled by a delivery worker, so poll until the replay lands).
    let lobby = edge.resume(0, lobby_last).expect("resume display 0");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while lobby_last < frontier {
        drain(&lobby, &mut lobby_state, &mut lobby_last);
        assert!(std::time::Instant::now() < deadline, "resume replay stalled at {lobby_last}");
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("…and resumes to pub_seq {lobby_last} ({frontier} published)");
    assert_eq!(lobby_last, frontier, "the resumed display caught all the way up");

    // It converged to exactly the mirror's state.
    let mirror_state = cluster.snapshot(1).expect("mirror snapshot").into_state();
    for (id, view) in mirror_state.flights().iter() {
        let got = lobby_state.flight(*id).expect("resumed display has every flight");
        assert!(views_equivalent(view, got), "display diverged on flight {id}");
    }

    // Meanwhile the rest of the wall kept receiving pushes the whole time.
    let mut delivered_somewhere = 0u64;
    for d in &displays {
        let mut s = OperationalState::new();
        let mut l = 0u64;
        drain(d, &mut s, &mut l);
        delivered_somewhere += u64::from(l > 0);
    }
    let stats = edge.counters().snapshot();
    println!(
        "edge: {} published, {} frames delivered across {} displays \
         ({} live connections)",
        stats.published, stats.delivered, DISPLAYS, stats.connections
    );
    assert!(delivered_somewhere > 0);
    drop(lobby);
    drop(displays);
    cluster.shutdown();
    println!("done.");
}
