//! An operations dashboard — the paper's "complex web-based" client.
//!
//! §2: the server's outputs feed clients "ranging from simple airport
//! flight displays to complex web-based reservation systems". This example
//! runs such a complex client against a live mirrored cluster: it
//! subscribes to the regular update stream and derives operational alerts
//! (crew duty exposure, missed/tight passenger connections, aircraft
//! turnarounds) with `mirror_ede::OpsMonitor`. Mid-run the dashboard
//! "reboots" and recovers the thin-client way — snapshot from a mirror,
//! then resume the stream — showing that rich derived state rebuilds
//! deterministically.
//!
//! Run with: `cargo run --example ops_dashboard`

use std::time::Duration;

use adaptable_mirroring::core::event::{Event, FlightStatus, PositionFix};
use adaptable_mirroring::ede::ops::{ConnectionPlan, OpsMonitor};
use adaptable_mirroring::runtime::{Cluster, ClusterConfig};

fn fix(alt: f64) -> PositionFix {
    PositionFix { lat: 33.6, lon: -84.4, alt_ft: alt, speed_kts: 430.0, heading_deg: 45.0 }
}

fn configured_monitor() -> OpsMonitor {
    let mut ops = OpsMonitor::new();
    ops.set_duty_limit_us(300_000); // a compressed "duty day" for the demo
    ops.assign_crew(901, 1, 0);
    ops.assign_crew(902, 2, 0);
    // Group 77 connects from flight 1 onto flight 2; group 78 from 3 onto 2.
    ops.plan_connection(ConnectionPlan { group: 77, from: 1, to: 2, passengers: 14 });
    ops.plan_connection(ConnectionPlan { group: 78, from: 3, to: 2, passengers: 6 });
    // The aircraft arriving as flight 1 departs again as flight 4.
    ops.plan_rotation(1, 4);
    ops
}

fn main() {
    let cluster = Cluster::start(ClusterConfig { mirrors: 2, ..Default::default() });
    let updates = cluster.subscribe_updates();
    let mut ops = configured_monitor();

    // The day's operations, streamed through the cluster.
    let mut seq = 0u64;
    let mut dseq = 0u64;
    let mut submit_status = |f: u32, s: FlightStatus| {
        dseq += 1;
        cluster.submit(Event::delta_status(dseq, f, s));
    };
    // Flight 1 flies and arrives; flight 3 is slow; flight 2 departs on
    // time (stranding group 78); flight 4 departs after 1's turnaround.
    for f in [1u32, 2, 3] {
        submit_status(f, FlightStatus::Boarding);
    }
    submit_status(1, FlightStatus::Departed);
    submit_status(3, FlightStatus::Departed);
    for round in 0..30 {
        seq += 1;
        cluster.submit(Event::faa_position(seq, 1, fix(30_000.0 - round as f64 * 900.0)));
        seq += 1;
        cluster.submit(Event::faa_position(seq, 3, fix(35_000.0)));
    }
    for s in [FlightStatus::Landed, FlightStatus::AtRunway, FlightStatus::AtGate] {
        submit_status(1, s);
    }
    submit_status(2, FlightStatus::Departed); // group 78's inbound (3) still airborne
    submit_status(4, FlightStatus::Boarding);
    submit_status(4, FlightStatus::Departed); // tail turnaround 1 → 4

    // The dashboard consumes the live stream…
    let expected = seq + dseq + 1; // +1: the EDE derives flight 1's Arrived
    let mut received = 0u64;
    let mut mid_run_alert_count = 0usize;
    let mut replayable: Vec<Event> = Vec::new();
    while received < expected {
        match updates.recv_timeout(Duration::from_secs(5)) {
            Some(u) => {
                replayable.push(u.clone());
                ops.observe(&u);
                received += 1;
                if received == expected / 2 {
                    mid_run_alert_count = ops.alerts.len();
                }
            }
            None => break,
        }
    }
    println!("updates consumed : {received}/{expected}");
    println!("alerts (live)    : {}", ops.alerts.len());
    for a in &ops.alerts {
        println!("  - {a:?}");
    }

    // …then "reboots": a fresh monitor replays the same stream (in a real
    // deployment, from a mirror snapshot plus the retained stream) and
    // reaches the identical picture — determinism end to end.
    let mut rebooted = configured_monitor();
    for u in &replayable {
        rebooted.observe(u);
    }
    println!("alerts (rebooted): {}", rebooted.alerts.len());
    assert_eq!(ops.alerts, rebooted.alerts, "derived ops state must rebuild identically");

    // Sanity: the stranded connection and the turnaround were both seen.
    assert!(ops.alerts.iter().any(|a| matches!(
        a,
        adaptable_mirroring::ede::OpsAlert::MissedConnection { group: 78, .. }
    )));
    assert!(ops
        .alerts
        .iter()
        .any(|a| matches!(a, adaptable_mirroring::ede::OpsAlert::TurnaroundComplete { .. })));
    assert!(mid_run_alert_count <= ops.alerts.len());

    cluster.shutdown();
    println!("done.");
}
